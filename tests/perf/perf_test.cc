/**
 * Golden stats-invariance suite: the hot-path optimizations must keep
 * every statistic bit-identical. The golden CSVs under
 * tests/perf/golden/ were generated from the pre-optimization
 * simulator (set MEGSIM_REGEN_GOLDEN=1 to regenerate after an
 * *intentional* model change), and every run here re-derives the same
 * frames at MEGSIM_THREADS=1, 2 and 8 and compares byte-for-byte.
 */

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/megsim.hh"
#include "exec/pool.hh"
#include "gpusim/gpu_config.hh"
#include "perf/perf.hh"
#include "workloads/workloads.hh"

using namespace msim;

namespace
{

#ifndef MEGSIM_PERF_GOLDEN_DIR
#error "MEGSIM_PERF_GOLDEN_DIR must point at tests/perf/golden"
#endif

const std::vector<std::string> kBenches = {"hcr", "bbr1", "spd"};
constexpr std::size_t kFrames = 12;

bool
regenerating()
{
    const char *env = std::getenv("MEGSIM_REGEN_GOLDEN");
    return env && env[0] == '1';
}

std::string
goldenPath(const std::string &name)
{
    return std::string(MEGSIM_PERF_GOLDEN_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return in ? out.str() : std::string();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
}

/** FrameStats rows as a canonical CSV text (max_digits10 doubles). */
std::string
statsCsv(const std::vector<gpusim::FrameStats> &stats)
{
    std::ostringstream out;
    const std::vector<std::string> header =
        gpusim::FrameStats::csvHeader();
    for (std::size_t i = 0; i < header.size(); ++i)
        out << (i ? "," : "") << header[i];
    out << "\n";
    char buf[64];
    for (const gpusim::FrameStats &s : stats) {
        const std::vector<double> row = s.toCsvRow();
        for (std::size_t i = 0; i < row.size(); ++i) {
            std::snprintf(buf, sizeof(buf), "%.17g", row[i]);
            out << (i ? "," : "") << buf;
        }
        out << "\n";
    }
    return out.str();
}

/** FrameActivity rows as canonical CSV text (all integers). */
std::string
activityCsv(const std::vector<gpusim::FrameActivity> &acts)
{
    std::ostringstream out;
    out << "frame,primitives,vertices,fragments,vs...,fs...\n";
    for (const gpusim::FrameActivity &a : acts) {
        out << a.frameIndex << "," << a.primitives << ","
            << a.verticesShaded << "," << a.fragmentsShaded;
        for (std::uint64_t v : a.vsCounts)
            out << "," << v;
        for (std::uint64_t v : a.fsCounts)
            out << "," << v;
        out << "\n";
    }
    return out.str();
}

class PerfGoldenTest : public ::testing::Test
{
  protected:
    void SetUp() override { saved_ = exec::Pool::configuredThreads(); }
    void TearDown() override
    {
        exec::Pool::setConfiguredThreads(saved_);
    }

    std::size_t saved_ = 1;
};

} // namespace

TEST_F(PerfGoldenTest, TimingStatsMatchGoldenAtEveryThreadCount)
{
    for (const std::string &alias : kBenches) {
        const gfx::SceneTrace scene =
            workloads::buildBenchmark(alias, 1.0, kFrames);
        const gpusim::GpuConfig config =
            gpusim::GpuConfig::evaluationScaled();
        const std::string golden = goldenPath(alias + "_stats.csv");

        if (regenerating()) {
            exec::Pool::setConfiguredThreads(1);
            megsim::BenchmarkData data(scene, config, "");
            writeFile(golden, statsCsv(data.frameStats()));
            continue;
        }

        const std::string expected = readFile(golden);
        ASSERT_FALSE(expected.empty())
            << golden
            << " missing — run with MEGSIM_REGEN_GOLDEN=1 first";
        for (std::size_t threads : {std::size_t(1), std::size_t(2),
                                    std::size_t(8)}) {
            exec::Pool::setConfiguredThreads(threads);
            megsim::BenchmarkData data(scene, config, "");
            EXPECT_EQ(statsCsv(data.frameStats()), expected)
                << alias << " at " << threads
                << " threads diverged from the pre-optimization "
                   "golden";
        }
    }
}

TEST_F(PerfGoldenTest, FunctionalActivityMatchesGolden)
{
    for (const std::string &alias : kBenches) {
        const gfx::SceneTrace scene =
            workloads::buildBenchmark(alias, 1.0, kFrames);
        const gpusim::GpuConfig config =
            gpusim::GpuConfig::evaluationScaled();
        const std::string golden = goldenPath(alias + "_activity.csv");

        if (regenerating()) {
            exec::Pool::setConfiguredThreads(1);
            megsim::BenchmarkData data(scene, config, "");
            writeFile(golden, activityCsv(data.activities()));
            continue;
        }

        const std::string expected = readFile(golden);
        ASSERT_FALSE(expected.empty())
            << golden
            << " missing — run with MEGSIM_REGEN_GOLDEN=1 first";
        for (std::size_t threads : {std::size_t(1), std::size_t(2),
                                    std::size_t(8)}) {
            exec::Pool::setConfiguredThreads(threads);
            megsim::BenchmarkData data(scene, config, "");
            EXPECT_EQ(activityCsv(data.activities()), expected)
                << alias << " at " << threads << " threads";
        }
    }
}

TEST_F(PerfGoldenTest, CheckpointJournalMatchesGolden)
{
    // The journal a completed pass appends is line-checksummed CSV of
    // the same FrameStats rows; regenerating it must be byte-stable
    // pre/post optimization and across thread counts. Capture the
    // journal by checkpointing into a scratch dir and reading the
    // stats journal before finish() discards it — the resilience
    // checkpoint API exposes exactly that window via a kill fault in
    // exec_test, but here the committed *cache artifact* serves the
    // same purpose: its payload is the journaled rows with the same
    // checksums, written by the same writer.
    const std::string alias = "hcr";
    const gfx::SceneTrace scene =
        workloads::buildBenchmark(alias, 1.0, kFrames);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();
    const std::string golden = goldenPath(alias + "_stats_artifact");

    auto artifactBytes = [&](std::size_t threads) {
        exec::Pool::setConfiguredThreads(threads);
        const std::string dir =
            (std::string(::testing::TempDir())) + "megsim_perf_t" +
            std::to_string(threads);
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        megsim::BenchmarkData data(scene, config, dir);
        data.frameStats();
        const std::string bytes = readFile(data.cachePath("stats"));
        std::filesystem::remove_all(dir);
        return bytes;
    };

    if (regenerating()) {
        writeFile(golden, artifactBytes(1));
        return;
    }

    const std::string expected = readFile(golden);
    ASSERT_FALSE(expected.empty())
        << golden << " missing — run with MEGSIM_REGEN_GOLDEN=1 first";
    for (std::size_t threads :
         {std::size_t(1), std::size_t(2), std::size_t(8)})
        EXPECT_EQ(artifactBytes(threads), expected)
            << alias << " stats artifact at " << threads << " threads";
}

TEST(PerfReportTest, JsonRoundTripsDeterministicFields)
{
    perf::PerfOptions options;
    options.benches = {"hcr"};
    options.frames = 3;
    auto report = perf::runHotpath(options);
    ASSERT_TRUE(report.ok()) << report.error().message;
    ASSERT_EQ(report->benches.size(), 1u);
    EXPECT_EQ(report->benches[0].frames, 3u);
    EXPECT_GT(report->benches[0].cycles, 0u);

    auto parsed = perf::PerfReport::fromJson(report->toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed->benches[0].alias, report->benches[0].alias);
    EXPECT_EQ(parsed->benches[0].frames, report->benches[0].frames);
    EXPECT_EQ(parsed->benches[0].cycles, report->benches[0].cycles);
    EXPECT_EQ(parsed->frameLimit, report->frameLimit);
}

TEST(PerfReportTest, CompareFlagsOnlyDeviationsBeyondBand)
{
    perf::PerfReport base;
    base.benches.push_back({"hcr", 10, 1000, 1.0, 100.0, 1.0});
    base.computeAggregates();

    perf::PerfReport same = base;
    EXPECT_TRUE(perf::compareReports(same, base, 25.0).empty());

    perf::PerfReport slower = base;
    slower.benches[0].framesPerSec = 50.0;
    slower.benches[0].wallSeconds = 2.0;
    slower.computeAggregates();
    EXPECT_FALSE(perf::compareReports(slower, base, 25.0).empty());

    // A big speedup also reports (trajectory point worth recording).
    perf::PerfReport faster = base;
    faster.benches[0].framesPerSec = 200.0;
    faster.benches[0].wallSeconds = 0.5;
    faster.computeAggregates();
    EXPECT_FALSE(perf::compareReports(faster, base, 25.0).empty());

    perf::PerfReport unknownSchema;
    EXPECT_FALSE(
        perf::PerfReport::fromJson(util::Json::object()).ok());
}

TEST(PerfReportTest, DeltasCarrySignAndModeSurvivesRoundTrip)
{
    perf::PerfReport base;
    base.benches.push_back({"hcr", 10, 1000, 1.0, 100.0, 1.0});
    base.computeAggregates();

    // The structured form the strict gate consumes: a slowdown is a
    // negative delta, a speedup positive, both beyond the band only.
    perf::PerfReport slower = base;
    slower.benches[0].framesPerSec = 50.0;
    slower.computeAggregates();
    const std::vector<perf::PerfDelta> down =
        perf::comparePerfDeltas(slower, base, 25.0);
    ASSERT_FALSE(down.empty());
    for (const perf::PerfDelta &d : down)
        EXPECT_LT(d.deltaPercent, 0.0);

    perf::PerfReport faster = base;
    faster.benches[0].framesPerSec = 200.0;
    faster.computeAggregates();
    const std::vector<perf::PerfDelta> up =
        perf::comparePerfDeltas(faster, base, 25.0);
    ASSERT_FALSE(up.empty());
    for (const perf::PerfDelta &d : up)
        EXPECT_GT(d.deltaPercent, 0.0);

    // mem_mode round-trips, and a report without one loads as exact
    // (every pre-fast-mem baseline was).
    base.memMode = "fast";
    auto parsed = perf::PerfReport::fromJson(base.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.error().message;
    EXPECT_EQ(parsed->memMode, "fast");

    util::Json old = base.toJson();
    old.set("mem_mode", util::Json()); // drop: null is skipped on load
    perf::PerfReport legacy;
    EXPECT_EQ(legacy.memMode, "exact");
}

TEST_F(PerfGoldenTest, DisabledMshrReproducesDefaultStatsExactly)
{
    // Satellite guard for the miss-merge fill path: an explicit
    // `<entries>=0` MSHR config must take the untouched pre-MSHR
    // probe path and reproduce the default config's stats (which DO
    // use the MSHR on idempotent caches) bit-for-bit — merging is
    // provably invisible, not approximately so. One benchmark at one
    // thread count keeps this golden-fast (the full cross-thread
    // sweep already runs above).
    const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, kFrames);
    exec::Pool::setConfiguredThreads(1);

    const gpusim::GpuConfig defaults =
        gpusim::GpuConfig::evaluationScaled();
    ASSERT_TRUE(defaults.memory.l2Mshr.enabled())
        << "default config should exercise the MSHR";
    megsim::BenchmarkData merged(scene, defaults, "");

    gpusim::GpuConfig off = defaults;
    off.memory.l2Mshr = mem::MshrConfig{};
    ASSERT_FALSE(off.memory.l2Mshr.enabled());
    megsim::BenchmarkData unmerged(scene, off, "");

    EXPECT_EQ(statsCsv(merged.frameStats()),
              statsCsv(unmerged.frameStats()))
        << "MSHR merging changed simulated statistics";
}

TEST(PerfReportTest, FastMemReportsFastModeAndDiffersFromExact)
{
    perf::PerfOptions options;
    options.benches = {"hcr"};
    options.frames = 4;
    auto exact = perf::runHotpath(options);
    ASSERT_TRUE(exact.ok()) << exact.error().message;
    EXPECT_EQ(exact->memMode, "exact");

    options.fastMem = mem::FastMemConfig{};
    options.fastMem.enabled = true;
    // Tiny calibration so the model actually kicks in at 4 frames.
    options.fastMem.calibrationWalks = 64;
    options.fastMem.probeEvery = 16;
    auto fast = perf::runHotpath(options);
    ASSERT_TRUE(fast.ok()) << fast.error().message;
    EXPECT_EQ(fast->memMode, "fast");
    EXPECT_GT(fast->benches[0].cycles, 0u);
    EXPECT_NE(fast->benches[0].cycles, exact->benches[0].cycles)
        << "the model should actually replace walks at this size";
}

TEST(PerfReportTest, MshrEnvOverrideParsesAndFallsBackOnGarbage)
{
    setenv("MEGSIM_L2_MSHR", "A:16:2", 1);
    gpusim::GpuConfig overridden = gpusim::GpuConfig::evaluationScaled();
    EXPECT_EQ(overridden.memory.l2Mshr.policy,
              mem::MshrConfig::Policy::Assoc);
    EXPECT_EQ(overridden.memory.l2Mshr.entries, 16u);
    EXPECT_EQ(overridden.memory.l2Mshr.maxMerges, 2u);

    setenv("MEGSIM_L2_MSHR", "F:0:0", 1);
    EXPECT_FALSE(gpusim::GpuConfig::evaluationScaled()
                     .memory.l2Mshr.enabled());

    // A malformed spec is ignored (with a warning), not fatal.
    setenv("MEGSIM_L2_MSHR", "bogus", 1);
    gpusim::GpuConfig fallback = gpusim::GpuConfig::evaluationScaled();
    unsetenv("MEGSIM_L2_MSHR");
    const gpusim::GpuConfig defaults =
        gpusim::GpuConfig::evaluationScaled();
    EXPECT_EQ(fallback.memory.l2Mshr.policy,
              defaults.memory.l2Mshr.policy);
    EXPECT_EQ(fallback.memory.l2Mshr.entries,
              defaults.memory.l2Mshr.entries);

    // Result-neutral by design: the override never shifts the config
    // fingerprint, so committed frame caches survive MSHR flips.
    setenv("MEGSIM_L2_MSHR", "A:64:8", 1);
    const std::uint64_t flipped =
        gpusim::GpuConfig::evaluationScaled().fingerprint();
    unsetenv("MEGSIM_L2_MSHR");
    EXPECT_EQ(flipped, defaults.fingerprint());
}
