/**
 * @file
 * CLI surface of the scheduler subsystem: `serve --policy`
 * validation, queue-full backpressure (submit exit code 9), and the
 * clean "service shutting down" refusal while a draining service
 * finishes its admitted requests. The harness passes the built
 * megsim-cli path as argv[1] (see tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

namespace
{

std::string cliPath;

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

std::filesystem::path
tempDir()
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "megsim_sched_cli_test";
    std::filesystem::create_directories(dir);
    return dir;
}

/** Run the CLI under a bounded frame limit; returns the exit code. */
int
runCli(const std::string &env, const std::string &args,
       const std::filesystem::path &log)
{
    const std::string cmd = "MEGSIM_FRAME_LIMIT=6 " + env + " " +
                            cliPath + " " + args + " > " +
                            log.string() + " 2>&1";
    const int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/** Cold per-test cache (a warm cache would skip all shard work). */
std::string
cacheEnv(const std::string &name)
{
    const std::filesystem::path dir = tempDir() / name;
    std::filesystem::remove_all(dir);
    return "MEGSIM_CACHE_DIR=" + dir.string();
}

void
waitForSocket(const std::filesystem::path &socket)
{
    for (int i = 0; i < 100 && !std::filesystem::exists(socket); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

void
waitForSocketGone(const std::filesystem::path &socket)
{
    for (int i = 0; i < 200 && std::filesystem::exists(socket); ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
}

} // namespace

TEST(SchedCli, BogusPolicyIsAUsageErrorBeforeBinding)
{
    ASSERT_FALSE(cliPath.empty()) << "pass megsim-cli path as argv[1]";
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path socket = dir / "nopolicy.sock";
    const std::filesystem::path log = dir / "policy.log";
    std::filesystem::remove(socket);

    EXPECT_EQ(runCli("", "serve --socket " + socket.string() +
                             " --policy round-robin",
                     log),
              2)
        << slurp(log);
    EXPECT_NE(slurp(log).find("unknown scheduling policy"),
              std::string::npos);
    // The usage error fired before the socket was ever bound.
    EXPECT_FALSE(std::filesystem::exists(socket));

    // --weight must be positive; --max-inflight must be >= 1.
    EXPECT_EQ(runCli("", "submit --socket x --weight 0", log), 2);
    EXPECT_EQ(runCli("", "serve --socket x --max-inflight 0", log),
              2);
}

TEST(SchedCli, QueueFullSubmitExitsWithNine)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path socket = dir / "full.sock";
    const std::filesystem::path serveLog = dir / "full_serve.log";
    std::filesystem::remove(socket);

    // One-slot queue; shard think time keeps the first request in
    // flight while the second one knocks.
    const std::string serveCmd =
        "MEGSIM_FRAME_LIMIT=6 MEGSIM_SHARD_THINK_MS=1500 " +
        cacheEnv("full_cache") + " " + cliPath + " serve --socket " +
        socket.string() +
        " --max-requests 2 --max-inflight 1 --workers 1 > " +
        serveLog.string() + " 2>&1 &";
    ASSERT_EQ(std::system(serveCmd.c_str()), 0);
    waitForSocket(socket);
    ASSERT_TRUE(std::filesystem::exists(socket)) << slurp(serveLog);

    const std::filesystem::path slowLog = dir / "full_slow.log";
    int slowRc = -1;
    std::thread slow([&] {
        slowRc = runCli("", "submit --socket " + socket.string() +
                                " --benches hcr",
                        slowLog);
    });
    // Let the first request get admitted, then hit the full queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    const std::filesystem::path rejectedLog = dir / "full_rej.log";
    const int rejectedRc =
        runCli("", "submit --socket " + socket.string() +
                       " --benches jjo --tenant late",
               rejectedLog);
    slow.join();

    EXPECT_EQ(rejectedRc, 9) << slurp(rejectedLog) << slurp(serveLog);
    EXPECT_NE(slurp(rejectedLog).find("rejected"), std::string::npos);
    EXPECT_NE(slurp(rejectedLog).find("queue full"),
              std::string::npos);
    EXPECT_EQ(slowRc, 0) << slurp(slowLog);

    // A rejection does not consume the admission budget: the second
    // accepted request completes and the service exits cleanly.
    const std::filesystem::path secondLog = dir / "full_second.log";
    EXPECT_EQ(runCli("", "submit --socket " + socket.string() +
                             " --benches hcr",
                     secondLog),
              0)
        << slurp(secondLog) << slurp(serveLog);
    waitForSocketGone(socket);
    EXPECT_FALSE(std::filesystem::exists(socket)) << slurp(serveLog);
    EXPECT_NE(slurp(serveLog).find("request 2 done"),
              std::string::npos);
}

TEST(SchedCli, DrainingServiceRefusesCleanlyInsteadOfHanging)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path socket = dir / "drain.sock";
    const std::filesystem::path serveLog = dir / "drain_serve.log";
    std::filesystem::remove(socket);

    const std::string serveCmd =
        "MEGSIM_FRAME_LIMIT=6 MEGSIM_SHARD_THINK_MS=1500 " +
        cacheEnv("drain_cache") + " " + cliPath + " serve --socket " +
        socket.string() +
        " --max-requests 1 --workers 1 --policy fifo > " +
        serveLog.string() + " 2>&1 &";
    ASSERT_EQ(std::system(serveCmd.c_str()), 0);
    waitForSocket(socket);
    ASSERT_TRUE(std::filesystem::exists(socket)) << slurp(serveLog);

    const std::filesystem::path slowLog = dir / "drain_slow.log";
    int slowRc = -1;
    std::thread slow([&] {
        slowRc = runCli("", "submit --socket " + socket.string() +
                                " --benches hcr",
                        slowLog);
    });
    // The admission budget is now spent; a late request must get a
    // prompt, clean refusal — not a hung socket.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    const std::filesystem::path lateLog = dir / "drain_late.log";
    const auto before = std::chrono::steady_clock::now();
    const int lateRc = runCli("", "submit --socket " +
                                      socket.string() +
                                      " --benches jjo",
                              lateLog);
    const auto waited = std::chrono::steady_clock::now() - before;
    slow.join();

    EXPECT_EQ(lateRc, 1) << slurp(lateLog) << slurp(serveLog);
    EXPECT_NE(slurp(lateLog).find("service shutting down"),
              std::string::npos)
        << slurp(lateLog);
    // "Prompt" means well inside the slow request's service time.
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(
                  waited)
                  .count(),
              1500);
    EXPECT_EQ(slowRc, 0) << slurp(slowLog);

    waitForSocketGone(socket);
    EXPECT_FALSE(std::filesystem::exists(socket)) << slurp(serveLog);
    // The service advertised its scheduler configuration.
    EXPECT_NE(slurp(serveLog).find("policy fifo"), std::string::npos);
}

int
main(int argc, char **argv)
{
    if (argc > 1 && argv[1][0] != '-') {
        cliPath = argv[1];
        // Hide the extra argument from gtest's flag parser.
        for (int i = 1; i + 1 < argc; ++i)
            argv[i] = argv[i + 1];
        --argc;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
