/**
 * @file
 * Scheduler subsystem tests: policy semantics (FIFO exclusivity,
 * fair-share no-starvation, shortest-remaining), per-request
 * bit-identity under interleaved multi-request dispatch with injected
 * worker kills, admission-control backpressure, and per-request
 * quarantine isolation.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "batch/campaign.hh"
#include "obs/ledger.hh"
#include "obs/stats.hh"
#include "resilience/fault.hh"
#include "sched/policy.hh"
#include "sched/scheduler.hh"
#include "serve/fleet.hh"

using namespace msim;
using resilience::Errc;
using resilience::FaultInjector;

namespace
{

class SchedTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        FaultInjector::setGlobalSpec("");
        dir_ = std::filesystem::temp_directory_path() /
               ("megsim_sched_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        FaultInjector::setGlobalSpec("");
        std::filesystem::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

batch::CampaignConfig
campaignConfig(const std::string &cacheDir, std::size_t frames)
{
    batch::CampaignConfig config;
    config.cacheDir = cacheDir;
    config.frameLimit = frames;
    config.megsim.selector.kmeans.seed = 0x4d4547;
    return config;
}

/** Fast supervision settings: near-zero backoff, fine shards. */
serve::SupervisorConfig
supConfig()
{
    serve::SupervisorConfig sup;
    sup.shardFrames = 4;
    sup.retryCap = 3;
    sup.backoffBaseMs = 1;
    sup.backoffCapMs = 4;
    return sup;
}

sched::SchedulerConfig
schedConfig(sched::Policy policy, std::size_t maxInflight)
{
    sched::SchedulerConfig config;
    config.policy = policy;
    config.maxInflight = maxInflight;
    config.shard = supConfig();
    return config;
}

/** In-process reference report for one bench list. */
batch::CampaignReport
soloReference(const std::string &cacheDir,
              const std::vector<std::string> &benches,
              std::size_t frames)
{
    batch::CampaignConfig config = campaignConfig(cacheDir, frames);
    config.benches = benches;
    batch::Campaign campaign(config);
    auto report = campaign.run();
    EXPECT_TRUE(report.ok()) << report.error().message;
    return *report;
}

} // namespace

TEST_F(SchedTest, PolicyNamesParseAndRoundTrip)
{
    using sched::Policy;
    EXPECT_STREQ(sched::policyName(Policy::Fifo), "fifo");
    EXPECT_STREQ(sched::policyName(Policy::FairShare), "fair");
    EXPECT_STREQ(sched::policyName(Policy::ShortestRemaining),
                 "srs");

    const std::pair<const char *, Policy> aliases[] = {
        {"fifo", Policy::Fifo},
        {"fair", Policy::FairShare},
        {"fair-share", Policy::FairShare},
        {"srs", Policy::ShortestRemaining},
        {"shortest", Policy::ShortestRemaining},
        {"shortest-remaining", Policy::ShortestRemaining},
    };
    for (const auto &[name, policy] : aliases) {
        auto parsed = sched::parsePolicy(name);
        ASSERT_TRUE(parsed.ok()) << name;
        EXPECT_EQ(*parsed, policy) << name;
    }
    auto bad = sched::parsePolicy("round-robin");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, Errc::BadFormat);
}

TEST_F(SchedTest, FifoIsExclusiveToTheOldestUnfinishedRequest)
{
    using sched::Candidate;
    // Oldest request (arrival 0) has work but nothing eligible —
    // FIFO refuses to dispatch the younger eligible one.
    std::vector<Candidate> candidates = {
        {0, 2, false, 0.0},
        {1, 2, true, 0.0},
    };
    EXPECT_EQ(sched::pickNext(sched::Policy::Fifo, candidates),
              sched::kNoPick);
    // Once the oldest drains (remaining 0), the next takes over.
    candidates[0].remaining = 0;
    EXPECT_EQ(sched::pickNext(sched::Policy::Fifo, candidates), 1u);
    // Fair-share happily backfills in the same situation.
    candidates[0].remaining = 2;
    EXPECT_EQ(sched::pickNext(sched::Policy::FairShare, candidates),
              1u);
}

TEST_F(SchedTest, FairSharePicksLeastVirtualTimeAndNeverStarves)
{
    using sched::Candidate;
    // Two tenants, weight 2 vs 1 (virtual time charged 1/weight per
    // dispatch). Simulate a saturated fleet handing out one lease at
    // a time: every tenant keeps progressing, and the heavy tenant
    // gets about twice the leases.
    double virtualA = 0.0, virtualB = 0.0;
    std::size_t leasesA = 0, leasesB = 0;
    for (int i = 0; i < 300; ++i) {
        std::vector<Candidate> candidates = {
            {0, 1, true, virtualA},
            {1, 1, true, virtualB},
        };
        const std::size_t pick =
            sched::pickNext(sched::Policy::FairShare, candidates);
        ASSERT_NE(pick, sched::kNoPick);
        if (pick == 0) {
            virtualA += 1.0 / 2.0; // weight 2
            ++leasesA;
        } else {
            virtualB += 1.0; // weight 1
            ++leasesB;
        }
        // No starvation: the virtual-time gap stays bounded, so
        // neither tenant can be locked out.
        ASSERT_LT(virtualA, virtualB + 1.5);
        ASSERT_LT(virtualB, virtualA + 1.5);
    }
    EXPECT_GT(leasesA, 0u);
    EXPECT_GT(leasesB, 0u);
    EXPECT_NEAR(static_cast<double>(leasesA) /
                    static_cast<double>(leasesB),
                2.0, 0.1);

    // Arrival order breaks exact ties.
    std::vector<Candidate> tie = {{3, 1, true, 1.0},
                                  {1, 1, true, 1.0},
                                  {2, 1, true, 4.0}};
    EXPECT_EQ(sched::pickNext(sched::Policy::FairShare, tie), 1u);
}

TEST_F(SchedTest, ShortestRemainingDrainsSmallRequestsFirst)
{
    using sched::Candidate;
    std::vector<Candidate> candidates = {{0, 5, true, 0.0},
                                         {1, 2, true, 0.0},
                                         {2, 2, false, 0.0},
                                         {3, 9, true, 0.0}};
    // Smallest eligible remaining wins; the ineligible twin is
    // skipped.
    EXPECT_EQ(
        sched::pickNext(sched::Policy::ShortestRemaining, candidates),
        1u);
    candidates[1].eligible = false;
    EXPECT_EQ(
        sched::pickNext(sched::Policy::ShortestRemaining, candidates),
        0u);
}

TEST_F(SchedTest, ConcurrentRequestsStayBitIdenticalToSoloRuns)
{
    constexpr std::size_t kFrames = 12;
    const std::vector<std::vector<std::string>> requestBenches = {
        {"hcr"}, {"jjo"}, {"spd"}};

    // Solo in-process references, one cold cache each.
    std::vector<batch::CampaignReport> solo;
    for (std::size_t i = 0; i < requestBenches.size(); ++i)
        solo.push_back(soloReference(
            path("solo" + std::to_string(i)), requestBenches[i],
            kFrames));

    for (std::size_t workers : {1u, 2u, 4u}) {
        // Kill the first attempt of one shard of request 0 and one
        // of request 1 (ids are global and bench-major: request 0
        // owns shards 0..2, request 1 owns 3..5 at 12 frames / 4 per
        // shard), so recovery interleaves with healthy dispatch.
        FaultInjector::setGlobalSpec(
            "worker.kill:shard=1,times=1;"
            "worker.kill:shard=4,times=1");

        const std::string cache =
            path("sched_w" + std::to_string(workers));
        const batch::CampaignConfig base =
            campaignConfig(cache, kFrames);
        serve::Fleet fleet(base, workers);
        sched::Scheduler scheduler(
            base, schedConfig(sched::Policy::FairShare, 8), fleet);

        std::vector<obs::RunLedger> ledgers(requestBenches.size());
        std::map<std::size_t, std::size_t> requestOf;
        for (std::size_t i = 0; i < requestBenches.size(); ++i) {
            sched::RequestSpec spec;
            spec.benches = requestBenches[i];
            spec.tenant = "tenant-" + std::to_string(i);
            spec.ledger = &ledgers[i];
            auto id = scheduler.admit(spec);
            ASSERT_TRUE(id.ok()) << id.error().message;
            requestOf[*id] = i;
        }
        std::vector<sched::RequestResult> results =
            scheduler.runToCompletion();
        fleet.shutdown();
        FaultInjector::setGlobalSpec("");
        ASSERT_EQ(results.size(), requestBenches.size());

        for (const sched::RequestResult &result : results) {
            ASSERT_TRUE(requestOf.count(result.id));
            const std::size_t i = requestOf[result.id];
            EXPECT_EQ(result.status, "ok");
            const std::vector<std::string> diffs =
                batch::diffReports(solo[i], result.report);
            EXPECT_TRUE(diffs.empty())
                << workers << " workers, request " << i << ": "
                << diffs.front();
        }
        // Every per-request ledger validates strictly and carries
        // the scheduler story for exactly its own request.
        for (const obs::RunLedger &ledger : ledgers) {
            std::size_t admits = 0, dones = 0, dispatches = 0;
            for (const util::Json &ev : ledger.events()) {
                ASSERT_TRUE(
                    obs::RunLedger::validateEvent(ev).ok());
                const std::string type =
                    ev.find("event")->asString();
                admits += type == "request_admit";
                dones += type == "request_done";
                dispatches += type == "sched_dispatch";
            }
            EXPECT_EQ(admits, 1u);
            EXPECT_EQ(dones, 1u);
            // 12 frames / 4 per shard, each dispatched at least
            // once (kills re-dispatch their shard).
            EXPECT_GE(dispatches, 3u);
        }
    }
}

TEST_F(SchedTest, AdmissionPastMaxInflightIsBusyNotQueued)
{
    const batch::CampaignConfig base =
        campaignConfig(path("cache"), 8);
    serve::Fleet fleet(base, 1);
    sched::Scheduler scheduler(
        base, schedConfig(sched::Policy::FairShare, 1), fleet);

    sched::RequestSpec spec;
    spec.benches = {"hcr"};
    ASSERT_TRUE(scheduler.admit(spec).ok());

    sched::RequestSpec second;
    second.benches = {"jjo"};
    auto rejected = scheduler.admit(second);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.error().code, Errc::Busy);
    EXPECT_NE(rejected.error().message.find("queue full"),
              std::string::npos);

    // Once the queue drains, admission reopens.
    EXPECT_EQ(scheduler.runToCompletion().size(), 1u);
    EXPECT_TRUE(scheduler.admit(second).ok());
    EXPECT_EQ(scheduler.runToCompletion().size(), 1u);
    fleet.shutdown();
}

TEST_F(SchedTest, PoisonShardDegradesOnlyItsOwnRequest)
{
    constexpr std::size_t kFrames = 6;
    const batch::CampaignReport healthySolo =
        soloReference(path("solo"), {"jjo"}, kFrames);

    // Request 0's only shard (global shard 0: hcr at 6 frames, 6 per
    // shard) dies on every attempt; request 1 shares the fleet.
    FaultInjector::setGlobalSpec("worker.kill:shard=0");
    const batch::CampaignConfig base =
        campaignConfig(path("cache"), kFrames);
    sched::SchedulerConfig config =
        schedConfig(sched::Policy::FairShare, 8);
    config.shard.shardFrames = kFrames;
    config.shard.retryCap = 1;
    serve::Fleet fleet(base, 2);
    sched::Scheduler scheduler(base, config, fleet);

    std::vector<obs::RunLedger> ledgers(2);
    sched::RequestSpec poison;
    poison.benches = {"hcr"};
    poison.tenant = "poison";
    poison.ledger = &ledgers[0];
    auto poisonId = scheduler.admit(poison);
    ASSERT_TRUE(poisonId.ok());

    sched::RequestSpec healthy;
    healthy.benches = {"jjo"};
    healthy.tenant = "healthy";
    healthy.ledger = &ledgers[1];
    auto healthyId = scheduler.admit(healthy);
    ASSERT_TRUE(healthyId.ok());

    std::vector<sched::RequestResult> results =
        scheduler.runToCompletion();
    fleet.shutdown();
    FaultInjector::setGlobalSpec("");
    ASSERT_EQ(results.size(), 2u);

    for (const sched::RequestResult &result : results) {
        if (result.id == *poisonId) {
            EXPECT_EQ(result.status, "degraded");
            ASSERT_EQ(result.report.quarantined.size(), 1u);
            EXPECT_EQ(result.report.quarantined[0].bench, "hcr");
            EXPECT_TRUE(result.report.benchmarks.empty());
        } else {
            EXPECT_EQ(result.id, *healthyId);
            EXPECT_EQ(result.status, "ok");
            EXPECT_TRUE(
                batch::diffReports(healthySolo, result.report)
                    .empty());
        }
    }
    // The quarantine story lands only in the poisoned request's
    // ledger; both ledgers stay schema-valid.
    std::size_t quarantines[2] = {0, 0};
    for (std::size_t i = 0; i < 2; ++i)
        for (const util::Json &ev : ledgers[i].events()) {
            ASSERT_TRUE(obs::RunLedger::validateEvent(ev).ok());
            quarantines[i] +=
                ev.find("event")->asString() == "shard_quarantine";
        }
    EXPECT_EQ(quarantines[0], 1u);
    EXPECT_EQ(quarantines[1], 0u);
}

TEST_F(SchedTest, DuplicateRegenerationCoalescesAcrossRequests)
{
    // Two concurrent requests for the same benchmark over the same
    // cache dir: the second must LEASE the first's in-flight
    // regeneration instead of racing it shard for shard (DESIGN.md
    // §6j), then load the producer's verified cache and report the
    // same numbers.
    constexpr std::size_t kFrames = 12;
    const batch::CampaignReport solo =
        soloReference(path("solo"), {"hcr"}, kFrames);

    const batch::CampaignConfig base =
        campaignConfig(path("cache"), kFrames);
    serve::Fleet fleet(base, 2);
    sched::Scheduler scheduler(
        base, schedConfig(sched::Policy::FairShare, 8), fleet);

    const double coalescedBefore =
        obs::processRegistry()
            .scalar("sched.shards_coalesced")
            .value();

    std::vector<obs::RunLedger> ledgers(2);
    sched::RequestSpec producer;
    producer.benches = {"hcr"};
    producer.tenant = "producer";
    producer.ledger = &ledgers[0];
    auto producerId = scheduler.admit(producer);
    ASSERT_TRUE(producerId.ok()) << producerId.error().message;

    sched::RequestSpec follower;
    follower.benches = {"hcr"};
    follower.tenant = "follower";
    follower.ledger = &ledgers[1];
    auto followerId = scheduler.admit(follower);
    ASSERT_TRUE(followerId.ok()) << followerId.error().message;

    // All 3 of the follower's would-be shards (12 frames / 4 per
    // shard) were avoided at admission, before any dispatch.
    EXPECT_EQ(obs::processRegistry()
                      .scalar("sched.shards_coalesced")
                      .value() -
                  coalescedBefore,
              3.0);

    std::vector<sched::RequestResult> results =
        scheduler.runToCompletion();
    fleet.shutdown();
    ASSERT_EQ(results.size(), 2u);
    for (const sched::RequestResult &result : results) {
        EXPECT_EQ(result.status, "ok");
        const std::vector<std::string> diffs =
            batch::diffReports(solo, result.report);
        EXPECT_TRUE(diffs.empty())
            << result.tenant << ": " << diffs.front();
        ASSERT_EQ(result.report.benchmarks.size(), 1u);
        if (result.id == *followerId)
            EXPECT_EQ(result.report.benchmarks[0].cacheStatus,
                      "coalesced");
        else
            EXPECT_EQ(result.report.benchmarks[0].cacheStatus,
                      "built");
    }

    // The follower's ledger tells the coalescing story — and never
    // dispatched a shard of its own.
    std::size_t coalesces = 0, resolved = 0, dispatches = 0;
    for (const util::Json &ev : ledgers[1].events()) {
        ASSERT_TRUE(obs::RunLedger::validateEvent(ev).ok());
        const std::string type = ev.find("event")->asString();
        if (type == "shard_coalesce") {
            ++coalesces;
            EXPECT_EQ(ev.find("producer")->asNumber(),
                      static_cast<double>(*producerId));
            EXPECT_EQ(ev.find("shards_avoided")->asNumber(), 3.0);
        }
        if (type == "lease_resolved") {
            ++resolved;
            EXPECT_EQ(ev.find("source")->asString(), "cache");
        }
        dispatches += type == "sched_dispatch";
    }
    EXPECT_EQ(coalesces, 1u);
    EXPECT_EQ(resolved, 1u);
    EXPECT_EQ(dispatches, 0u);
}

TEST_F(SchedTest, LeaseFallsBackToRebuildWhenProducerQuarantines)
{
    // The producer's regeneration dies (poisoned shard, quarantined
    // bench, no cache stored): the leasing request must claim
    // ownership and rebuild on its own shards instead of waiting for
    // a cache that will never appear.
    constexpr std::size_t kFrames = 8;
    const batch::CampaignReport solo =
        soloReference(path("solo"), {"hcr"}, kFrames);

    // Producer owns global shards 0..1 (8 frames / 4 per shard);
    // shard 0 dies on every attempt with a retry cap of 1.
    FaultInjector::setGlobalSpec("worker.kill:shard=0");
    const batch::CampaignConfig base =
        campaignConfig(path("cache"), kFrames);
    sched::SchedulerConfig config =
        schedConfig(sched::Policy::FairShare, 8);
    config.shard.retryCap = 1;
    serve::Fleet fleet(base, 2);
    sched::Scheduler scheduler(base, config, fleet);

    std::vector<obs::RunLedger> ledgers(2);
    sched::RequestSpec producer;
    producer.benches = {"hcr"};
    producer.tenant = "producer";
    producer.ledger = &ledgers[0];
    auto producerId = scheduler.admit(producer);
    ASSERT_TRUE(producerId.ok());

    sched::RequestSpec follower;
    follower.benches = {"hcr"};
    follower.tenant = "follower";
    follower.ledger = &ledgers[1];
    auto followerId = scheduler.admit(follower);
    ASSERT_TRUE(followerId.ok());

    std::vector<sched::RequestResult> results =
        scheduler.runToCompletion();
    fleet.shutdown();
    FaultInjector::setGlobalSpec("");
    ASSERT_EQ(results.size(), 2u);

    for (const sched::RequestResult &result : results) {
        if (result.id == *producerId) {
            EXPECT_EQ(result.status, "degraded");
            ASSERT_EQ(result.report.quarantined.size(), 1u);
            EXPECT_EQ(result.report.quarantined[0].bench, "hcr");
        } else {
            EXPECT_EQ(result.id, *followerId);
            EXPECT_EQ(result.status, "ok");
            const std::vector<std::string> diffs =
                batch::diffReports(solo, result.report);
            EXPECT_TRUE(diffs.empty()) << diffs.front();
        }
    }
    // The lease resolved to a rebuild, dispatched on fresh shard ids.
    std::size_t rebuilds = 0, dispatches = 0;
    for (const util::Json &ev : ledgers[1].events()) {
        ASSERT_TRUE(obs::RunLedger::validateEvent(ev).ok());
        const std::string type = ev.find("event")->asString();
        if (type == "lease_resolved") {
            ++rebuilds;
            EXPECT_EQ(ev.find("source")->asString(), "rebuild");
        }
        dispatches += type == "sched_dispatch";
    }
    EXPECT_EQ(rebuilds, 1u);
    EXPECT_GE(dispatches, 2u);
}

TEST_F(SchedTest, SuiteClusterRequestsMatchInProcessSuiteAnalysis)
{
    // A suite-cluster campaign through the scheduler (the --workers
    // path) must reproduce the in-process suite analysis exactly:
    // finalize() pools the reassembled ground truth the same way
    // Campaign::run does.
    constexpr std::size_t kFrames = 12;
    batch::CampaignConfig soloConfig =
        campaignConfig(path("solo"), kFrames);
    soloConfig.benches = {"hcr", "jjo"};
    soloConfig.suiteCluster = true;
    batch::Campaign soloCampaign(soloConfig);
    auto solo = soloCampaign.run();
    ASSERT_TRUE(solo.ok()) << solo.error().message;
    ASSERT_TRUE(solo->suiteCluster);

    batch::CampaignConfig base = campaignConfig(path("cache"), kFrames);
    base.suiteCluster = true;
    serve::Fleet fleet(base, 2);
    sched::Scheduler scheduler(
        base, schedConfig(sched::Policy::FairShare, 8), fleet);
    sched::RequestSpec spec;
    spec.benches = {"hcr", "jjo"};
    auto id = scheduler.admit(spec);
    ASSERT_TRUE(id.ok()) << id.error().message;
    std::vector<sched::RequestResult> results =
        scheduler.runToCompletion();
    fleet.shutdown();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, "ok");
    EXPECT_TRUE(results[0].report.suiteCluster);
    EXPECT_EQ(results[0].report.sharedRepresentatives,
              solo->sharedRepresentatives);
    EXPECT_EQ(results[0].report.suiteReductionFactor,
              solo->suiteReductionFactor);
    const std::vector<std::string> diffs =
        batch::diffReports(*solo, results[0].report);
    EXPECT_TRUE(diffs.empty()) << diffs.front();
}
