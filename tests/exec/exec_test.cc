#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/megsim.hh"
#include "exec/pool.hh"
#include "obs/stats.hh"
#include "resilience/expected.hh"
#include "resilience/fault.hh"
#include "workloads/workloads.hh"

using namespace msim;
using namespace msim::exec;

namespace
{

/** Scratch dir per test; threads and faults restored on both ends. */
class ExecTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        resilience::FaultInjector::setGlobalSpec("");
        saved_ = Pool::configuredThreads();
        dir_ = std::filesystem::temp_directory_path() /
               ("megsim_exec_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        resilience::FaultInjector::setGlobalSpec("");
        Pool::setConfiguredThreads(saved_);
        std::filesystem::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
    std::size_t saved_ = 1;
};

std::string
slurp(const std::string &p)
{
    std::ifstream in(p, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

bool
sameMatrix(const megsim::FeatureMatrix &a,
           const megsim::FeatureMatrix &b)
{
    if (a.rows() != b.rows() || a.cols() != b.cols())
        return false;
    for (std::size_t f = 0; f < a.rows(); ++f)
        for (std::size_t c = 0; c < a.cols(); ++c)
            if (a.at(f, c) != b.at(f, c))
                return false;
    return true;
}

} // namespace

TEST_F(ExecTest, ParallelForRunsEveryItemExactlyOnce)
{
    for (Chunking chunking : {Chunking::Static, Chunking::Dynamic}) {
        Pool pool(4);
        std::vector<std::atomic<int>> hits(1000);
        auto err = pool.parallelFor(
            hits.size(),
            [&](std::size_t i,
                std::size_t w) -> resilience::Expected<void> {
                EXPECT_LT(w, pool.workers());
                hits[i].fetch_add(1, std::memory_order_relaxed);
                return {};
            },
            chunking);
        EXPECT_TRUE(err.ok());
        for (const auto &h : hits)
            EXPECT_EQ(h.load(), 1);
    }
}

TEST_F(ExecTest, ParallelForSurfacesLowestFailingIndex)
{
    Pool pool(4);
    std::vector<std::atomic<int>> ran(200);
    auto err = pool.parallelFor(
        ran.size(),
        [&](std::size_t i, std::size_t) -> resilience::Expected<void> {
            ran[i].fetch_add(1, std::memory_order_relaxed);
            if (i == 37 || i == 61)
                return resilience::errorf(resilience::Errc::Injected,
                                          "item %zu failed", i);
            return {};
        },
        Chunking::Dynamic, 1);
    ASSERT_FALSE(err.ok());
    // The error surfaced is deterministically the LOWEST failing
    // index, and every item below it has run.
    EXPECT_NE(err.error().message.find("item 37"), std::string::npos)
        << err.error().message;
    for (std::size_t i = 0; i <= 37; ++i)
        EXPECT_EQ(ran[i].load(), 1) << "item " << i;
}

TEST_F(ExecTest, MapOrderedCommitsOnCallerInIndexOrder)
{
    Pool pool(4);
    const std::size_t n = 500;
    std::vector<std::size_t> order;
    auto err = pool.parallelMapOrdered<std::size_t>(
        n,
        [](std::size_t i,
           std::size_t) -> resilience::Expected<std::size_t> {
            return i * 3;
        },
        [&](std::size_t i, std::size_t &&value) {
            EXPECT_EQ(value, i * 3);
            order.push_back(i);
        });
    EXPECT_TRUE(err.ok());
    ASSERT_EQ(order.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(order[i], i);
}

TEST_F(ExecTest, MapOrderedErrorCommitsExactPrefix)
{
    Pool pool(4);
    std::vector<std::size_t> committed;
    auto err = pool.parallelMapOrdered<std::size_t>(
        100,
        [](std::size_t i,
           std::size_t) -> resilience::Expected<std::size_t> {
            if (i == 13)
                return resilience::errorf(resilience::Errc::Injected,
                                          "item %zu failed", i);
            return i;
        },
        [&](std::size_t i, std::size_t &&) { committed.push_back(i); },
        1);
    ASSERT_FALSE(err.ok());
    // Committed prefix is exactly [0, firstFailingItem).
    ASSERT_EQ(committed.size(), 13u);
    for (std::size_t i = 0; i < 13; ++i)
        EXPECT_EQ(committed[i], i);
}

TEST_F(ExecTest, NestedUseDegradesToSerial)
{
    Pool pool(4);
    std::vector<int> outer(8, 0);
    auto err = pool.parallelFor(
        outer.size(),
        [&](std::size_t i, std::size_t) -> resilience::Expected<void> {
            // A nested job must run inline instead of deadlocking on
            // the single in-flight-job slot.
            std::vector<int> inner(16, 0);
            auto nested = pool.parallelFor(
                inner.size(),
                [&](std::size_t j,
                    std::size_t w) -> resilience::Expected<void> {
                    EXPECT_EQ(w, 0u) << "nested items run inline";
                    inner[j] = 1;
                    return {};
                });
            EXPECT_TRUE(nested.ok());
            for (int v : inner)
                EXPECT_EQ(v, 1);
            outer[i] = 1;
            return {};
        });
    EXPECT_TRUE(err.ok());
    for (int v : outer)
        EXPECT_EQ(v, 1);
}

TEST_F(ExecTest, WorkerStatShardsMergeIntoProcessRegistry)
{
    // Workers bump a process-registry counter from inside the job;
    // the TLS redirect sends each bump to the worker's own shard and
    // the merge folds them back — so the total is exact at any thread
    // count (and the write pattern is what the TSan CI job checks).
    const std::string name = "test.exec.shard_bumps";
    const double before =
        obs::processRegistry().scalar(name, "").value();
    Pool pool(4);
    auto err = pool.parallelFor(
        1000,
        [&](std::size_t, std::size_t) -> resilience::Expected<void> {
            ++obs::processRegistry().scalar(name, "");
            return {};
        });
    EXPECT_TRUE(err.ok());
    EXPECT_DOUBLE_EQ(
        obs::processRegistry().scalar(name, "").value(),
        before + 1000.0);
}

TEST_F(ExecTest, SerialPoolIsExactFallback)
{
    Pool pool(1);
    EXPECT_EQ(pool.workers(), 1u);
    std::vector<std::size_t> order;
    auto err = pool.parallelFor(
        32,
        [&](std::size_t i, std::size_t w) -> resilience::Expected<void> {
            EXPECT_EQ(w, 0u);
            order.push_back(i);
            return {};
        });
    EXPECT_TRUE(err.ok());
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i) << "serial pool preserves index order";
}

TEST_F(ExecTest, PipelineOutputsAreThreadCountInvariant)
{
    // The full front half of the MEGsim flow — ground-truth passes,
    // feature build, k-means, k-selection — must be bit-identical at
    // 1, 2 and 8 threads.
    const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, 12);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();

    struct Snapshot
    {
        megsim::FeatureMatrix features;
        megsim::KMeansResult clusters;
        megsim::SelectionResult selection;
        std::vector<std::vector<double>> statsCsv;
    };
    auto snapshot = [&](std::size_t threads) {
        Pool::setConfiguredThreads(threads);
        megsim::BenchmarkData data(scene, config, "");
        Snapshot s;
        s.features = megsim::buildFeatureMatrix(data.activities(),
                                                scene);
        megsim::normalize(s.features);
        s.clusters = megsim::kmeans(s.features, 3);
        s.selection = megsim::selectClustering(s.features);
        for (const gpusim::FrameStats &fs : data.frameStats())
            s.statsCsv.push_back(fs.toCsvRow());
        return s;
    };

    const Snapshot serial = snapshot(1);
    for (std::size_t threads : {std::size_t(2), std::size_t(8)}) {
        const Snapshot parallel = snapshot(threads);
        EXPECT_TRUE(sameMatrix(serial.features, parallel.features))
            << threads << " threads: FeatureMatrix diverged";
        EXPECT_EQ(serial.clusters.labels, parallel.clusters.labels)
            << threads << " threads";
        EXPECT_EQ(serial.clusters.centroids,
                  parallel.clusters.centroids)
            << threads << " threads";
        EXPECT_EQ(serial.clusters.inertia, parallel.clusters.inertia)
            << threads << " threads";
        EXPECT_EQ(serial.selection.chosenIndex,
                  parallel.selection.chosenIndex)
            << threads << " threads";
        ASSERT_EQ(serial.selection.trace.size(),
                  parallel.selection.trace.size())
            << threads << " threads: selection trace diverged";
        for (std::size_t i = 0; i < serial.selection.trace.size(); ++i)
            EXPECT_EQ(serial.selection.trace[i].bic,
                      parallel.selection.trace[i].bic)
                << threads << " threads, trace step " << i;
        EXPECT_EQ(serial.statsCsv, parallel.statsCsv)
            << threads << " threads";
    }
}

TEST_F(ExecTest, CheckpointJournalsAreThreadCountInvariant)
{
    // Kill the ground-truth pass right after frame 2 is checkpointed,
    // once per thread count, each in its own process and cache dir.
    // The journal + manifest bytes a crashed run leaves behind must
    // not depend on the thread count.
    const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, 6);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();

    const std::size_t threadCounts[] = {1, 2, 8};
    std::vector<std::string> stems;
    for (std::size_t t : threadCounts) {
        const std::string cache = path("t" + std::to_string(t));
        std::filesystem::create_directories(cache);
        const pid_t child = fork();
        ASSERT_GE(child, 0);
        if (child == 0) {
            Pool::setConfiguredThreads(t);
            resilience::FaultInjector::setGlobalSpec(
                "run.kill:frame=2");
            megsim::BenchmarkData doomed(scene, config, cache);
            doomed.frameStats();
            _exit(42); // unreachable: the fault fires first
        }
        int status = 0;
        ASSERT_EQ(waitpid(child, &status, 0), child);
        ASSERT_TRUE(WIFSIGNALED(status));
        ASSERT_EQ(WTERMSIG(status), SIGKILL);

        megsim::BenchmarkData probe(scene, config, cache);
        const std::string statsPath = probe.cachePath("stats");
        stems.push_back(statsPath.substr(0, statsPath.rfind("_stats")));
    }

    for (const char *suffix :
         {".ckpt.manifest", ".ckpt.stats.jnl", ".ckpt.activity.jnl"}) {
        const std::string reference = slurp(stems[0] + suffix);
        ASSERT_FALSE(reference.empty()) << suffix;
        for (std::size_t i = 1; i < stems.size(); ++i)
            EXPECT_EQ(slurp(stems[i] + suffix), reference)
                << suffix << " diverged at "
                << threadCounts[i] << " threads";
    }
}

TEST_F(ExecTest, SigkillResumeRoundTripAtFourThreads)
{
    const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, 5);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();

    // Uninterrupted serial reference, no caching.
    Pool::setConfiguredThreads(1);
    megsim::BenchmarkData reference(scene, config, "");
    const std::vector<gpusim::FrameStats> expected =
        reference.frameStats();
    ASSERT_EQ(expected.size(), 5u);

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        Pool::setConfiguredThreads(4);
        resilience::FaultInjector::setGlobalSpec("run.kill:frame=2");
        megsim::BenchmarkData doomed(scene, config, dir_.string());
        doomed.frameStats();
        _exit(42);
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    ASSERT_EQ(WTERMSIG(status), SIGKILL);

    // Resume with four workers too: the surviving prefix plus the
    // recomputed tail must match the serial reference bit for bit.
    Pool::setConfiguredThreads(4);
    megsim::BenchmarkData survivor(scene, config, dir_.string());
    const std::vector<gpusim::FrameStats> resumed =
        survivor.frameStats();
    ASSERT_EQ(resumed.size(), expected.size());
    for (std::size_t f = 0; f < expected.size(); ++f)
        EXPECT_EQ(resumed[f].toCsvRow(), expected[f].toCsvRow())
            << "frame " << f;
}

TEST_F(ExecTest, ShardMergeIsExactUnderDynamicChunking)
{
    // Dynamic chunking assigns items to workers nondeterministically,
    // so the per-worker shard *contents* differ run to run — but the
    // worker-index-order merge must still reproduce the exact serial
    // totals for every stat kind, at any thread count. Integer-valued
    // samples keep double addition associative, which is what makes
    // this bit-exact rather than merely close.
    const std::size_t n = 1000;
    auto run = [&](std::size_t threads, const std::string &tag) {
        Pool pool(threads);
        obs::StatsRegistry &reg = obs::processRegistry();
        const std::string scalar = "test.exec.dyn." + tag + ".count";
        const std::string avg = "test.exec.dyn." + tag + ".avg";
        const std::string dist = "test.exec.dyn." + tag + ".dist";
        auto err = pool.parallelFor(
            n,
            [&](std::size_t i,
                std::size_t) -> resilience::Expected<void> {
                obs::StatsRegistry &shard = obs::processRegistry();
                ++shard.scalar(scalar, "");
                shard.average(avg, "").sample(
                    static_cast<double>(i % 7));
                shard.distribution(dist, 0.0, 10.0, 10, "")
                    .sample(static_cast<double>(i % 13));
                return {};
            },
            Chunking::Dynamic, 1); // chunk=1: maximum interleave
        EXPECT_TRUE(err.ok());
        // Return the merged view for comparison.
        struct Merged
        {
            double count, mean;
            std::uint64_t samples;
            std::vector<std::uint64_t> buckets;
            std::uint64_t overflow;
        } m;
        m.count = reg.scalar(scalar, "").value();
        m.mean = reg.average(avg, "").value();
        m.samples = reg.average(avg, "").count();
        const obs::Distribution &d =
            reg.distribution(dist, 0.0, 10.0, 10, "");
        for (std::size_t b = 0; b < d.numBuckets(); ++b)
            m.buckets.push_back(d.bucket(b));
        m.overflow = d.overflow();
        return m;
    };

    const auto serial = run(1, "t1");
    EXPECT_DOUBLE_EQ(serial.count, static_cast<double>(n));
    EXPECT_EQ(serial.samples, n);
    for (std::size_t threads : {std::size_t(2), std::size_t(8)}) {
        const auto parallel =
            run(threads, "t" + std::to_string(threads));
        EXPECT_EQ(parallel.count, serial.count) << threads;
        EXPECT_EQ(parallel.mean, serial.mean) << threads;
        EXPECT_EQ(parallel.samples, serial.samples) << threads;
        EXPECT_EQ(parallel.buckets, serial.buckets) << threads;
        EXPECT_EQ(parallel.overflow, serial.overflow) << threads;
    }
}

TEST_F(ExecTest, PoolCountersAreRegistered)
{
    Pool::setConfiguredThreads(3);
    Pool &pool = Pool::global();
    EXPECT_EQ(pool.workers(), 3u);
    const double jobsBefore =
        obs::processRegistry().scalar("exec.pool.jobs", "").value();
    (void)pool.parallelFor(
        64, [](std::size_t, std::size_t) -> resilience::Expected<void> {
            return {};
        });
    EXPECT_DOUBLE_EQ(
        obs::processRegistry().scalar("exec.pool.jobs", "").value(),
        jobsBefore + 1.0);
    EXPECT_GE(obs::processRegistry()
                  .scalar("exec.pool.items", "")
                  .value(),
              64.0);
    EXPECT_DOUBLE_EQ(obs::processRegistry()
                         .scalar("exec.pool.workers", "")
                         .value(),
                     3.0);
}
