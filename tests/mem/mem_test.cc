#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "obs/stats.hh"

using namespace msim;
using namespace msim::mem;

namespace
{

CacheConfig
smallCache()
{
    CacheConfig config;
    config.sizeBytes = 256;  // 4 lines
    config.lineBytes = 64;
    config.ways = 2;         // 2 sets x 2 ways
    return config;
}

} // namespace

TEST(Cache, MissThenHitOnSameLine)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x103f, false).hit)
        << "same 64 B line must hit";
    EXPECT_FALSE(cache.access(0x1040, false).hit)
        << "next line is a different block";
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache cache(smallCache());
    // Three lines mapping to the same set of a 2-way cache:
    // set index = (addr/64) % 2, so use even line numbers.
    cache.access(0x0000, false);
    cache.access(0x0080, false);
    cache.access(0x0000, false);            // touch A -> B is LRU
    cache.access(0x0100, false);            // evicts B
    EXPECT_TRUE(cache.access(0x0000, false).hit);
    EXPECT_FALSE(cache.access(0x0080, false).hit) << "B was evicted";
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache cache(smallCache());
    cache.access(0x0000, true);             // dirty line A
    cache.access(0x0080, false);
    // Force eviction of A (LRU after touching B twice).
    cache.access(0x0080, false);
    const CacheAccess evict = cache.access(0x0100, false);
    EXPECT_FALSE(evict.hit);
    EXPECT_TRUE(evict.writeback);
    EXPECT_EQ(evict.victimLine, 0x0000u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, WriteThroughNeverWritesBack)
{
    CacheConfig config = smallCache();
    config.writeThrough = true;
    Cache cache(config);
    cache.access(0x0000, true);
    cache.access(0x0080, true);
    cache.access(0x0100, true);
    cache.access(0x0180, true);
    cache.access(0x0200, true);
    EXPECT_EQ(cache.writebacks(), 0u);
}

TEST(Cache, InvalidateColdStartsButKeepsCounters)
{
    Cache cache(smallCache());
    cache.access(0x0000, false);
    cache.access(0x0000, false);
    cache.invalidate();
    EXPECT_FALSE(cache.access(0x0000, false).hit);
    EXPECT_EQ(cache.accesses(), 3u) << "counters survive invalidate";
}

TEST(Cache, SharedRegistryExposesDottedCounters)
{
    obs::StatsRegistry registry;
    Cache cache(smallCache(), registry.group("gpu").group("l2"));
    cache.access(0x0000, false);
    const obs::Stat *misses = registry.find("gpu.l2.misses");
    ASSERT_NE(misses, nullptr);
    EXPECT_DOUBLE_EQ(misses->value(), 1.0);
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    DramConfig config;
    Dram dram(config);
    const sim::Tick first = dram.access(0, 0x0000, false);
    const sim::Tick second = dram.access(0, 0x0040, false);
    // Second access hits the open row but still waits for the bank
    // and channel, so it completes after the first.
    EXPECT_GT(second, first);
    // A fresh bank with a closed row pays the full row-miss latency.
    EXPECT_GE(first, config.rowMissLatency);
    EXPECT_EQ(dram.transactions(), 2u);
    EXPECT_EQ(dram.bytesTransferred(), 2u * config.lineBytes);
}

TEST(Dram, DrainClosesRows)
{
    DramConfig config;
    Dram dram(config);
    const sim::Tick warm = dram.access(0, 0x0000, false);
    dram.drain();
    const sim::Tick cold = dram.access(0, 0x0040, false);
    // After drain the row must be re-activated: same cost as cold.
    EXPECT_EQ(cold, warm);
}

TEST(Dram, ChannelBandwidthSerializesBursts)
{
    DramConfig config;
    config.banks = 2;
    Dram dram(config);
    // Different banks, issued at the same tick: the shared channel
    // must serialize the two line transfers.
    const sim::Tick a = dram.access(0, 0x0000, false);
    const sim::Tick b = dram.access(0, config.rowBytes, false);
    const sim::Tick burst = config.lineBytes / config.bytesPerCycle;
    EXPECT_GE(b, a + burst);
}
