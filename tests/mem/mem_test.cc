#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "obs/stats.hh"

using namespace msim;
using namespace msim::mem;

namespace
{

CacheConfig
smallCache()
{
    CacheConfig config;
    config.sizeBytes = 256;  // 4 lines
    config.lineBytes = 64;
    config.ways = 2;         // 2 sets x 2 ways
    return config;
}

} // namespace

TEST(Cache, MissThenHitOnSameLine)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x103f, false).hit)
        << "same 64 B line must hit";
    EXPECT_FALSE(cache.access(0x1040, false).hit)
        << "next line is a different block";
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache cache(smallCache());
    // Three lines mapping to the same set of a 2-way cache:
    // set index = (addr/64) % 2, so use even line numbers.
    cache.access(0x0000, false);
    cache.access(0x0080, false);
    cache.access(0x0000, false);            // touch A -> B is LRU
    cache.access(0x0100, false);            // evicts B
    EXPECT_TRUE(cache.access(0x0000, false).hit);
    EXPECT_FALSE(cache.access(0x0080, false).hit) << "B was evicted";
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache cache(smallCache());
    cache.access(0x0000, true);             // dirty line A
    cache.access(0x0080, false);
    // Force eviction of A (LRU after touching B twice).
    cache.access(0x0080, false);
    const CacheAccess evict = cache.access(0x0100, false);
    EXPECT_FALSE(evict.hit);
    EXPECT_TRUE(evict.writeback);
    EXPECT_EQ(evict.victimLine, 0x0000u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, WriteThroughNeverWritesBack)
{
    CacheConfig config = smallCache();
    config.writeThrough = true;
    Cache cache(config);
    cache.access(0x0000, true);
    cache.access(0x0080, true);
    cache.access(0x0100, true);
    cache.access(0x0180, true);
    cache.access(0x0200, true);
    EXPECT_EQ(cache.writebacks(), 0u);
}

TEST(Cache, InvalidateColdStartsButKeepsCounters)
{
    Cache cache(smallCache());
    cache.access(0x0000, false);
    cache.access(0x0000, false);
    cache.invalidate();
    EXPECT_FALSE(cache.access(0x0000, false).hit);
    EXPECT_EQ(cache.accesses(), 3u) << "counters survive invalidate";
}

TEST(Cache, SharedRegistryExposesDottedCounters)
{
    obs::StatsRegistry registry;
    Cache cache(smallCache(), registry.group("gpu").group("l2"));
    cache.access(0x0000, false);
    const obs::Stat *misses = registry.find("gpu.l2.misses");
    ASSERT_NE(misses, nullptr);
    EXPECT_DOUBLE_EQ(misses->value(), 1.0);
}

TEST(Cache, SharedStatsGroupAggregatesAcrossCaches)
{
    // Aggregation contract (see cache.hh): N caches bound to the SAME
    // stats group SUM into the shared counters — registration is
    // idempotent and every cache increments the one registered Stat.
    // The timing simulator relies on this for its per-core texture
    // caches, which all report as gpu.texture_cache.*.
    obs::StatsRegistry registry;
    obs::StatsGroup group = registry.group("gpu").group("tex");
    Cache a(smallCache(), group);
    Cache b(smallCache(), group);
    Cache c(smallCache(), group);

    a.access(0x0000, false); // miss
    a.access(0x0000, false); // hit
    b.access(0x0000, false); // miss (separate array state)
    c.access(0x0000, false); // miss
    c.access(0x0040, false); // miss

    const obs::Stat *accesses = registry.find("gpu.tex.accesses");
    const obs::Stat *hits = registry.find("gpu.tex.hits");
    const obs::Stat *misses = registry.find("gpu.tex.misses");
    ASSERT_NE(accesses, nullptr);
    ASSERT_NE(hits, nullptr);
    ASSERT_NE(misses, nullptr);
    EXPECT_DOUBLE_EQ(accesses->value(), 5.0)
        << "shared counters must sum, not overwrite";
    EXPECT_DOUBLE_EQ(hits->value(), 1.0);
    EXPECT_DOUBLE_EQ(misses->value(), 4.0);

    // The accessors read the shared Stat too, so on a shared-group
    // cache they report the GROUP aggregate, not per-cache traffic.
    EXPECT_EQ(a.accesses(), 5u);
    EXPECT_EQ(b.accesses(), 5u);
    EXPECT_EQ(c.misses(), 4u);
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    DramConfig config;
    Dram dram(config);
    const sim::Tick first = dram.access(0, 0x0000, false);
    const sim::Tick second = dram.access(0, 0x0040, false);
    // Second access hits the open row but still waits for the bank
    // and channel, so it completes after the first.
    EXPECT_GT(second, first);
    // A fresh bank with a closed row pays the full row-miss latency.
    EXPECT_GE(first, config.rowMissLatency);
    EXPECT_EQ(dram.transactions(), 2u);
    EXPECT_EQ(dram.bytesTransferred(), 2u * config.lineBytes);
}

TEST(Dram, DrainClosesRows)
{
    DramConfig config;
    Dram dram(config);
    const sim::Tick warm = dram.access(0, 0x0000, false);
    dram.drain();
    const sim::Tick cold = dram.access(0, 0x0040, false);
    // After drain the row must be re-activated: same cost as cold.
    EXPECT_EQ(cold, warm);
}

TEST(Dram, ChannelBandwidthSerializesBursts)
{
    DramConfig config;
    config.banks = 2;
    Dram dram(config);
    // Different banks, issued at the same tick: the shared channel
    // must serialize the two line transfers.
    const sim::Tick a = dram.access(0, 0x0000, false);
    const sim::Tick b = dram.access(0, config.rowBytes, false);
    const sim::Tick burst = config.lineBytes / config.bytesPerCycle;
    EXPECT_GE(b, a + burst);
}
