#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/fastmem.hh"
#include "mem/mshr.hh"
#include "obs/stats.hh"

using namespace msim;
using namespace msim::mem;

namespace
{

CacheConfig
smallCache()
{
    CacheConfig config;
    config.sizeBytes = 256;  // 4 lines
    config.lineBytes = 64;
    config.ways = 2;         // 2 sets x 2 ways
    return config;
}

} // namespace

TEST(Cache, MissThenHitOnSameLine)
{
    Cache cache(smallCache());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x103f, false).hit)
        << "same 64 B line must hit";
    EXPECT_FALSE(cache.access(0x1040, false).hit)
        << "next line is a different block";
    EXPECT_EQ(cache.accesses(), 4u);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    Cache cache(smallCache());
    // Three lines mapping to the same set of a 2-way cache:
    // set index = (addr/64) % 2, so use even line numbers.
    cache.access(0x0000, false);
    cache.access(0x0080, false);
    cache.access(0x0000, false);            // touch A -> B is LRU
    cache.access(0x0100, false);            // evicts B
    EXPECT_TRUE(cache.access(0x0000, false).hit);
    EXPECT_FALSE(cache.access(0x0080, false).hit) << "B was evicted";
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    Cache cache(smallCache());
    cache.access(0x0000, true);             // dirty line A
    cache.access(0x0080, false);
    // Force eviction of A (LRU after touching B twice).
    cache.access(0x0080, false);
    const CacheAccess evict = cache.access(0x0100, false);
    EXPECT_FALSE(evict.hit);
    EXPECT_TRUE(evict.writeback);
    EXPECT_EQ(evict.victimLine, 0x0000u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, WriteThroughNeverWritesBack)
{
    CacheConfig config = smallCache();
    config.writeThrough = true;
    Cache cache(config);
    cache.access(0x0000, true);
    cache.access(0x0080, true);
    cache.access(0x0100, true);
    cache.access(0x0180, true);
    cache.access(0x0200, true);
    EXPECT_EQ(cache.writebacks(), 0u);
}

TEST(Cache, InvalidateColdStartsButKeepsCounters)
{
    Cache cache(smallCache());
    cache.access(0x0000, false);
    cache.access(0x0000, false);
    cache.invalidate();
    EXPECT_FALSE(cache.access(0x0000, false).hit);
    EXPECT_EQ(cache.accesses(), 3u) << "counters survive invalidate";
}

TEST(Cache, SharedRegistryExposesDottedCounters)
{
    obs::StatsRegistry registry;
    Cache cache(smallCache(), registry.group("gpu").group("l2"));
    cache.access(0x0000, false);
    const obs::Stat *misses = registry.find("gpu.l2.misses");
    ASSERT_NE(misses, nullptr);
    EXPECT_DOUBLE_EQ(misses->value(), 1.0);
}

TEST(Cache, SharedStatsGroupAggregatesAcrossCaches)
{
    // Aggregation contract (see cache.hh): N caches bound to the SAME
    // stats group SUM into the shared counters — registration is
    // idempotent and every cache increments the one registered Stat.
    // The timing simulator relies on this for its per-core texture
    // caches, which all report as gpu.texture_cache.*.
    obs::StatsRegistry registry;
    obs::StatsGroup group = registry.group("gpu").group("tex");
    Cache a(smallCache(), group);
    Cache b(smallCache(), group);
    Cache c(smallCache(), group);

    a.access(0x0000, false); // miss
    a.access(0x0000, false); // hit
    b.access(0x0000, false); // miss (separate array state)
    c.access(0x0000, false); // miss
    c.access(0x0040, false); // miss

    const obs::Stat *accesses = registry.find("gpu.tex.accesses");
    const obs::Stat *hits = registry.find("gpu.tex.hits");
    const obs::Stat *misses = registry.find("gpu.tex.misses");
    ASSERT_NE(accesses, nullptr);
    ASSERT_NE(hits, nullptr);
    ASSERT_NE(misses, nullptr);
    EXPECT_DOUBLE_EQ(accesses->value(), 5.0)
        << "shared counters must sum, not overwrite";
    EXPECT_DOUBLE_EQ(hits->value(), 1.0);
    EXPECT_DOUBLE_EQ(misses->value(), 4.0);

    // The accessors read the shared Stat too, so on a shared-group
    // cache they report the GROUP aggregate, not per-cache traffic.
    EXPECT_EQ(a.accesses(), 5u);
    EXPECT_EQ(b.accesses(), 5u);
    EXPECT_EQ(c.misses(), 4u);
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    DramConfig config;
    Dram dram(config);
    const sim::Tick first = dram.access(0, 0x0000, false);
    const sim::Tick second = dram.access(0, 0x0040, false);
    // Second access hits the open row but still waits for the bank
    // and channel, so it completes after the first.
    EXPECT_GT(second, first);
    // A fresh bank with a closed row pays the full row-miss latency.
    EXPECT_GE(first, config.rowMissLatency);
    EXPECT_EQ(dram.transactions(), 2u);
    EXPECT_EQ(dram.bytesTransferred(), 2u * config.lineBytes);
}

TEST(Dram, DrainClosesRows)
{
    DramConfig config;
    Dram dram(config);
    const sim::Tick warm = dram.access(0, 0x0000, false);
    dram.drain();
    const sim::Tick cold = dram.access(0, 0x0040, false);
    // After drain the row must be re-activated: same cost as cold.
    EXPECT_EQ(cold, warm);
}

TEST(Dram, ChannelBandwidthSerializesBursts)
{
    DramConfig config;
    config.banks = 2;
    Dram dram(config);
    // Different banks, issued at the same tick: the shared channel
    // must serialize the two line transfers.
    const sim::Tick a = dram.access(0, 0x0000, false);
    const sim::Tick b = dram.access(0, config.rowBytes, false);
    const sim::Tick burst = config.lineBytes / config.bytesPerCycle;
    EXPECT_GE(b, a + burst);
}

// ---------------------------------------------------------------------
// MSHR miss-merging (mem/mshr.hh): the stamp protocol that keeps the
// default mode bit-identical, the texture-FIFO slot recycling, and the
// merge-cap / full-file semantics.

TEST(MshrConfig, ParsesGpgpusimTextureSyntax)
{
    auto f = MshrConfig::parse("F:128:4");
    ASSERT_TRUE(f.ok());
    EXPECT_EQ(f->policy, MshrConfig::Policy::TexFifo);
    EXPECT_EQ(f->entries, 128u);
    EXPECT_EQ(f->maxMerges, 4u);
    EXPECT_TRUE(f->enabled());
    EXPECT_EQ(f->toString(), "F:128:4");

    auto a = MshrConfig::parse("A:16:0");
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->policy, MshrConfig::Policy::Assoc);
    EXPECT_EQ(a->maxMerges, 0u) << "0 = uncapped merges";

    auto off = MshrConfig::parse("F:0:4");
    ASSERT_TRUE(off.ok());
    EXPECT_FALSE(off->enabled()) << "<entries>=0 disables the file";

    EXPECT_FALSE(MshrConfig::parse("").ok());
    EXPECT_FALSE(MshrConfig::parse("X:128:4").ok());
    EXPECT_FALSE(MshrConfig::parse("F:128").ok());
    EXPECT_FALSE(MshrConfig::parse("F:nope:4").ok());
}

TEST(Mshr, SameLineMergesCollapseToOneWalk)
{
    MshrFile mshr(MshrConfig{MshrConfig::Policy::TexFifo, 8, 0});
    // One completed walk of line 7 at downstream stamp 42 ...
    mshr.noteWalk(7, 42);
    // ... absorbs any number of repeat requesters at that stamp.
    EXPECT_TRUE(mshr.tryMerge(7, 42));
    EXPECT_TRUE(mshr.tryMerge(7, 42));
    EXPECT_TRUE(mshr.tryMerge(7, 42));
    EXPECT_EQ(mshr.allocations(), 1u);
    EXPECT_EQ(mshr.merges(), 3u);
    // A different line or a moved stamp must fall through to the
    // real probe: the recorded walk no longer proves anything.
    EXPECT_FALSE(mshr.tryMerge(6, 42));
    EXPECT_FALSE(mshr.tryMerge(7, 43)) << "stale stamp must refuse";
}

TEST(Mshr, MergeCapBoundsRepeatRequesters)
{
    MshrFile mshr(MshrConfig{MshrConfig::Policy::TexFifo, 8, 2});
    mshr.noteWalk(3, 1);
    EXPECT_TRUE(mshr.tryMerge(3, 1));
    EXPECT_TRUE(mshr.tryMerge(3, 1));
    EXPECT_FALSE(mshr.tryMerge(3, 1)) << "merge credit exhausted";
    // A fresh walk of the same line re-arms the credit.
    mshr.noteWalk(3, 1);
    EXPECT_TRUE(mshr.tryMerge(3, 1));
}

TEST(Mshr, TexFifoRecyclesConflictingSlotAssocStalls)
{
    // 4 slots, direct-mapped by line: lines 1 and 5 collide.
    MshrFile fifo(MshrConfig{MshrConfig::Policy::TexFifo, 4, 0});
    fifo.noteWalk(1, 9);
    fifo.noteWalk(5, 9); // texture FIFO: recycle the live slot
    EXPECT_EQ(fifo.evictions(), 1u);
    EXPECT_EQ(fifo.stalls(), 0u);
    EXPECT_FALSE(fifo.tryMerge(1, 9)) << "line 1 was recycled";
    EXPECT_TRUE(fifo.tryMerge(5, 9));

    MshrFile assoc(MshrConfig{MshrConfig::Policy::Assoc, 4, 0});
    assoc.noteWalk(1, 9);
    assoc.noteWalk(5, 9); // assoc: refuse while the entry is live
    EXPECT_EQ(assoc.stalls(), 1u);
    EXPECT_EQ(assoc.evictions(), 0u);
    EXPECT_TRUE(assoc.tryMerge(1, 9)) << "resident entry survives";
    EXPECT_FALSE(assoc.tryMerge(5, 9));
    // Once the resident entry goes stale (stamp moved on), the same
    // conflicting allocation succeeds.
    assoc.noteWalk(5, 10);
    EXPECT_TRUE(assoc.tryMerge(5, 10));
}

TEST(Mshr, EntriesKeepTextureFifoAllocationOrder)
{
    MshrFile mshr(MshrConfig{MshrConfig::Policy::TexFifo, 4, 0});
    mshr.noteWalk(0, 1);
    mshr.noteWalk(1, 1);
    mshr.noteWalk(2, 1);
    // seq must record strict allocation order across slots — the
    // texture-FIFO age that slot recycling is keyed on.
    std::uint64_t lastSeq = 0;
    for (std::uint32_t line = 0; line < 3; ++line) {
        const MshrFile::SlotView v = mshr.slot(line);
        ASSERT_TRUE(v.valid);
        EXPECT_EQ(v.line, line);
        if (line > 0)
            EXPECT_GT(v.seq, lastSeq);
        lastSeq = v.seq;
    }
    // reset() drops entries (cold start) but keeps counters.
    mshr.reset();
    EXPECT_FALSE(mshr.slot(0).valid);
    EXPECT_EQ(mshr.allocations(), 3u);
}

TEST(Mshr, StampEqualityProvesMruReadHit)
{
    // The full protocol against a real 2-way cache: after a walk
    // fills a line, a repeat probe at an unchanged stamp would be an
    // MRU-way read hit (no state change); any mutation in between
    // moves the stamp and disables the merge.
    Cache cache(smallCache());
    ASSERT_TRUE(cache.readHitIdempotent());
    MshrFile mshr(MshrConfig{MshrConfig::Policy::TexFifo, 8, 0});

    cache.access(0x0000, false); // miss + fill
    const std::uint64_t line = cache.lineOf(0x0000);
    mshr.noteWalk(line, cache.stateTick());

    ASSERT_TRUE(mshr.tryMerge(line, cache.stateTick()));
    // The merged probe books the hit the real access would have.
    const std::uint64_t stampBefore = cache.stateTick();
    cache.noteMergedHit();
    EXPECT_EQ(cache.stateTick(), stampBefore)
        << "a merged hit must not move the stamp";
    // Cross-check against the real thing: an actual MRU read hit
    // leaves the stamp unchanged too, so the two are identical.
    cache.access(0x0000, false);
    EXPECT_EQ(cache.stateTick(), stampBefore);

    // Any real mutation (a fill of another set) moves the stamp and
    // the recorded walk stops matching.
    cache.access(0x0040, false);
    EXPECT_FALSE(mshr.tryMerge(line, cache.stateTick()));
}

TEST(Cache, AccessRangeMatchesPerLineLoop)
{
    // The batched multi-line walk must be observationally identical
    // to the per-line loop it replaced: same hits, same counters,
    // same state stamp — on aligned, unaligned and multi-set spans.
    const struct
    {
        sim::Addr addr;
        std::uint64_t bytes;
    } spans[] = {
        {0x0000, 64},   // one aligned line
        {0x1010, 32},   // within one line, unaligned
        {0x2030, 200},  // straddles 4 lines, unaligned start
        {0x0000, 1024}, // 16 lines, wraps every set
    };
    for (const auto &span : spans) {
        Cache batched(smallCache());
        Cache looped(smallCache());
        // Warm both identically so the spans see mixed hits/misses.
        batched.access(0x2040, false);
        looped.access(0x2040, false);

        const Cache::RangeResult r =
            batched.accessRange(span.addr, span.bytes, false);

        std::uint32_t lines = 0, hits = 0;
        const std::uint64_t first = looped.lineOf(span.addr);
        const std::uint64_t last =
            looped.lineOf(span.addr + span.bytes - 1);
        for (std::uint64_t l = first; l <= last; ++l) {
            ++lines;
            hits += looped.access(l * 64, false).hit ? 1 : 0;
        }
        EXPECT_EQ(r.lines, lines);
        EXPECT_EQ(r.hits, hits);
        EXPECT_EQ(batched.accesses(), looped.accesses());
        EXPECT_EQ(batched.hits(), looped.hits());
        EXPECT_EQ(batched.misses(), looped.misses());
        EXPECT_EQ(batched.stateTick(), looped.stateTick());
    }
}

// ---------------------------------------------------------------------
// Fast-mem calibration model (mem/fastmem.hh): sampling schedule,
// integer latency fit, counter estimates and the reported error —
// all hand-computed references.

TEST(FastMem, WantExactFollowsCalibrateThenProbeSchedule)
{
    FastMemConfig config;
    config.enabled = true;
    config.calibrationWalks = 4;
    config.probeEvery = 3;
    FastMemModel model;
    model.configure(config);

    // Walks 1..4: the calibration prefix is always exact.
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(model.wantExact()) << "calibration walk " << i;
        model.observe(10, true, false, false);
    }
    // After calibration only every probeEvery-th walk stays exact
    // (walk indices 6, 9, 12, ... here).
    EXPECT_FALSE(model.wantExact()); // walk 5
    EXPECT_TRUE(model.wantExact());  // walk 6
    EXPECT_FALSE(model.wantExact()); // walk 7
    EXPECT_FALSE(model.wantExact()); // walk 8
    EXPECT_TRUE(model.wantExact());  // walk 9

    // A cold start drops the fit: exact again until re-calibrated.
    model.reset();
    EXPECT_TRUE(model.wantExact());
}

TEST(FastMem, FirstWalkIsAlwaysExactEvenWithZeroCalibration)
{
    FastMemConfig config;
    config.enabled = true;
    config.calibrationWalks = 0;
    config.probeEvery = 0; // no periodic probes either
    FastMemModel model;
    model.configure(config);
    // The model cannot return a latency before observing one walk.
    EXPECT_TRUE(model.wantExact());
    model.observe(7, false, true, false);
    EXPECT_FALSE(model.wantExact());
    EXPECT_EQ(model.modeledLatency(), 7u);
}

TEST(FastMem, ModeledLatencyIsIntegerMeanOfObservations)
{
    FastMemModel model;
    model.configure(FastMemConfig{true, 8, 0, 8});
    EXPECT_EQ(model.modeledLatency(), 1u) << "no fit yet: floor of 1";
    model.observe(10, true, false, false);
    model.observe(21, false, true, false);
    // (10 + 21) / 2 = 15 (integer floor).
    EXPECT_EQ(model.modeledLatency(), 15u);
}

TEST(FastMem, EstimatesScaleObservedHitRatesExactly)
{
    FastMemModel model;
    model.configure(FastMemConfig{true, 8, 0, 8});
    // Hand-computed reference: 8 observed walks, 6 L1 hits; of the
    // 2 L1 misses, 1 hits L2 and 1 goes to DRAM.
    for (int i = 0; i < 6; ++i)
        model.observe(4, true, false, false);
    model.observe(20, false, true, false);
    model.observe(90, false, false, true);
    for (int i = 0; i < 100; ++i)
        model.noteModeled();

    const FastMemModel::Estimates e = model.estimates();
    EXPECT_EQ(e.l1Accesses, 100u);
    EXPECT_EQ(e.l1Hits, 75u);    // 100 * 6 / 8
    EXPECT_EQ(e.l2Accesses, 25u); // misses = accesses - hits
    EXPECT_EQ(e.l2Hits, 12u);     // 25 * 1 / 2
    EXPECT_EQ(e.dramLines, 13u);  // 25 - 12
    EXPECT_EQ(model.exactWalks(), 8u);
    EXPECT_EQ(model.modeledWalks(), 100u);
}

TEST(FastMem, ExactVsFastPercentMatchesHandComputedReference)
{
    // The campaign's reported error is |fast - exact| / exact * 100
    // over the audited sums; check the exact values and the edges.
    EXPECT_DOUBLE_EQ(FastMemModel::exactVsFastPercent(200.0, 190.0),
                     5.0);
    EXPECT_DOUBLE_EQ(FastMemModel::exactVsFastPercent(200.0, 213.0),
                     6.5);
    EXPECT_DOUBLE_EQ(FastMemModel::exactVsFastPercent(50.0, 50.0),
                     0.0);
    EXPECT_DOUBLE_EQ(FastMemModel::exactVsFastPercent(0.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(FastMemModel::exactVsFastPercent(0.0, 3.0),
                     100.0);
}
