#include <gtest/gtest.h>

#include <sstream>

#include "obs/profile.hh"

using namespace msim::obs;

TEST(PhaseProfiler, AccumulatesNamedPhases)
{
    PhaseProfiler profiler;
    EXPECT_TRUE(profiler.empty());
    profiler.add("functional", 1.5);
    profiler.add("clustering", 0.5);
    profiler.add("functional", 0.5);

    ASSERT_EQ(profiler.phases().size(), 2u);
    EXPECT_EQ(profiler.phases()[0].name, "functional");
    EXPECT_DOUBLE_EQ(profiler.phases()[0].seconds, 2.0);
    EXPECT_EQ(profiler.phases()[0].entries, 2u);
    EXPECT_EQ(profiler.phases()[1].name, "clustering");
    EXPECT_DOUBLE_EQ(profiler.totalSeconds(), 2.5);
}

TEST(PhaseProfiler, PreservesInsertionOrder)
{
    PhaseProfiler profiler;
    profiler.add("b", 0.1);
    profiler.add("a", 0.1);
    ASSERT_EQ(profiler.phases().size(), 2u);
    EXPECT_EQ(profiler.phases()[0].name, "b");
    EXPECT_EQ(profiler.phases()[1].name, "a");
}

TEST(PhaseProfiler, ScopedAddsElapsedTime)
{
    PhaseProfiler profiler;
    {
        PhaseProfiler::Scoped scope(profiler, "scoped");
    }
    ASSERT_EQ(profiler.phases().size(), 1u);
    EXPECT_EQ(profiler.phases()[0].name, "scoped");
    EXPECT_GE(profiler.phases()[0].seconds, 0.0);
}

TEST(PhaseProfiler, ReportNamesEveryPhase)
{
    PhaseProfiler profiler;
    profiler.add("functional", 1.0);
    profiler.add("estimation", 3.0);
    std::ostringstream os;
    profiler.report(os);
    EXPECT_NE(os.str().find("functional"), std::string::npos);
    EXPECT_NE(os.str().find("estimation"), std::string::npos);
}

TEST(PhaseProfiler, ClearEmpties)
{
    PhaseProfiler profiler;
    profiler.add("x", 1.0);
    profiler.clear();
    EXPECT_TRUE(profiler.empty());
    EXPECT_DOUBLE_EQ(profiler.totalSeconds(), 0.0);
}

TEST(PhaseProfiler, GlobalIsASingleton)
{
    EXPECT_EQ(&PhaseProfiler::global(), &PhaseProfiler::global());
}

TEST(Heartbeat, ShortRunsStaySilent)
{
    // A sub-interval run must neither print nor crash.
    Heartbeat beat(10, "test", 60.0);
    for (std::size_t i = 0; i <= 10; ++i)
        beat.tick(i);
    beat.finish();
}
