/**
 * @file
 * Compiled with -DMSIM_OBS_NO_TRACE (see tests/CMakeLists.txt): every
 * header-inline telemetry emit path — cycle-trace events AND host
 * timeline spans — must compile out entirely. The assertions run with
 * the runtime enable flags ON, so anything that survived the macro
 * would be caught recording.
 *
 * Only the header-inline emit/record/Span paths vary with the macro;
 * msim_core itself is built without it, so linking against the normal
 * library is exactly the configuration the guard has to hold in.
 */

#ifndef MSIM_OBS_NO_TRACE
#error "this TU must be compiled with -DMSIM_OBS_NO_TRACE"
#endif

#include <gtest/gtest.h>

#include "obs/timeline.hh"
#include "obs/trace.hh"

using namespace msim::obs;

TEST(NoTrace, TraceEmitCompilesOut)
{
    ObsConfig config;
    config.traceEnabled = true;
    TraceBuffer buf(config);
    buf.setEnabled(true);
    buf.emit("stage", TraceCategory::Stage, 0, 10, 20, 1);
    buf.instant("mark", TraceCategory::Stage, 0, 15);
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.emittedCount(), 0u);
}

TEST(NoTrace, TimelineRecordCompilesOut)
{
    const bool was = timelineEnabled();
    setTimelineEnabled(true);
    TimelineRecorder recorder(1);
    recorder.record("chunk", 0.0, 1.0, 64, "detail");
    EXPECT_EQ(recorder.size(), 0u);
    setTimelineEnabled(was);
}

TEST(NoTrace, TimelineSpanCompilesOut)
{
    const bool was = timelineEnabled();
    setTimelineEnabled(true);
    TimelineRecorder shard(2);
    {
        TimelineOverride redirect(shard);
        TimelineRecorder::Span span("job", 3, "alias");
        TimelineRecorder::Span bare("bare");
    }
    EXPECT_EQ(shard.size(), 0u);
    EXPECT_EQ(TimelineRecorder::global().size(), 0u);
    setTimelineEnabled(was);
}
