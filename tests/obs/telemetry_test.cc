/**
 * @file
 * Unit tests for the run-telemetry layer: per-worker host timelines
 * (TimelineRecorder + Chrome export), host-cost attribution
 * (AttribRoot/AttribScope + obs.host.* flush), and the strict
 * megsim-run-v1 JSONL run ledger.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "exec/pool.hh"
#include "obs/attrib.hh"
#include "obs/ledger.hh"
#include "obs/profile.hh"
#include "obs/stats.hh"
#include "obs/timeline.hh"
#include "resilience/expected.hh"

using namespace msim;
using namespace msim::obs;

namespace
{

/** Telemetry flags are process globals: restore them per test. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        timelineWas_ = timelineEnabled();
        attribWas_ = hostAttribEnabled();
    }

    void
    TearDown() override
    {
        setTimelineEnabled(timelineWas_);
        setHostAttribEnabled(attribWas_);
    }

  private:
    bool timelineWas_ = false;
    bool attribWas_ = false;
};

/** Burn a little wall time so attributed seconds are non-zero. */
double
spin(double seconds)
{
    const double until = wallSeconds() + seconds;
    double sink = 0.0;
    while (wallSeconds() < until)
        sink += std::sqrt(sink + 1.0);
    return sink;
}

} // namespace

TEST_F(TelemetryTest, TimelineDisabledRecordsNothing)
{
    setTimelineEnabled(false);
    TimelineRecorder recorder(1);
    recorder.record("x", 0.0, 1.0);
    {
        TimelineOverride redirect(recorder);
        TimelineRecorder::Span span("y");
    }
    EXPECT_EQ(recorder.size(), 0u);
}

TEST_F(TelemetryTest, TimelineMergePreservesTracks)
{
    setTimelineEnabled(true);
    TimelineRecorder caller(0);
    TimelineRecorder worker(3);
    worker.record("chunk", 1.0, 2.0, 16);
    caller.record("wait", 0.5, 2.5);
    caller.mergeFrom(worker);
    EXPECT_EQ(worker.size(), 0u) << "merge moves, not copies";
    ASSERT_EQ(caller.size(), 2u);
    EXPECT_EQ(caller.spans()[0].track, 0u);
    EXPECT_EQ(caller.spans()[1].track, 3u);
    EXPECT_EQ(caller.spans()[1].arg, 16u);
}

TEST_F(TelemetryTest, TimelineOverrideRedirectsSpans)
{
    setTimelineEnabled(true);
    TimelineRecorder shard(2);
    {
        TimelineOverride redirect(shard);
        TimelineRecorder::Span span("inner", 7, "detail");
    }
    ASSERT_EQ(shard.size(), 1u);
    EXPECT_STREQ(shard.spans()[0].name, "inner");
    EXPECT_EQ(shard.spans()[0].track, 2u);
    EXPECT_EQ(shard.spans()[0].arg, 7u);
    EXPECT_EQ(shard.spans()[0].detail, "detail");
    EXPECT_GE(shard.spans()[0].end, shard.spans()[0].begin);
}

TEST_F(TelemetryTest, ChromeExportHasOneLanePerWorker)
{
    std::vector<HostSpan> spans;
    spans.push_back(HostSpan{"job", "", 1, 10.0, 10.5, 3});
    spans.push_back(HostSpan{"job", "alias", 0, 10.1, 10.2, 0});
    std::ostringstream os;
    writeTimelineChrome(os, spans, 4);
    const std::string text = os.str();
    // Metadata names every worker lane even if it recorded nothing.
    EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(text.find("worker 0 (caller)"), std::string::npos);
    EXPECT_NE(text.find("worker 1"), std::string::npos);
    EXPECT_NE(text.find("worker 3"), std::string::npos);
    EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
    // Timestamps are relative to the earliest span begin.
    EXPECT_NE(text.find("\"ts\":0"), std::string::npos);
}

TEST_F(TelemetryTest, PoolJobSpansLandOnWorkerTracks)
{
    setTimelineEnabled(true);
    TimelineRecorder::global().clear();
    exec::Pool pool(4);
    // Static chunking pins a contiguous range to each worker, so every
    // worker thread is guaranteed to record a chunk span — under
    // dynamic chunking a fast caller can drain a trivial job before
    // the workers even wake.
    auto err = pool.parallelFor(
        64,
        [](std::size_t, std::size_t) -> resilience::Expected<void> {
            TimelineRecorder::Span span("item");
            return {};
        },
        exec::Chunking::Static);
    ASSERT_TRUE(err.ok());
    const std::vector<HostSpan> &spans =
        TimelineRecorder::global().spans();
    ASSERT_FALSE(spans.empty());
    bool sawChunk = false;
    bool sawNonCallerTrack = false;
    for (const HostSpan &s : spans) {
        EXPECT_LT(s.track, 4u);
        if (std::string(s.name) == "pool.chunk")
            sawChunk = true;
        if (s.track > 0)
            sawNonCallerTrack = true;
    }
    EXPECT_TRUE(sawChunk) << "pool chunks are recorded as spans";
    EXPECT_TRUE(sawNonCallerTrack)
        << "worker shards keep their own track ids through the merge";
    TimelineRecorder::global().clear();
}

TEST_F(TelemetryTest, AttribDisabledLeavesRegistryUntouched)
{
    setHostAttribEnabled(false);
    StatsRegistry sandbox;
    {
        ProcessRegistryOverride redirect(sandbox);
        AttribRoot root;
        AttribScope scope(HostDomain::MemWalk);
        spin(0.001);
    }
    EXPECT_EQ(sandbox.find("obs.host.memwalk.seconds"), nullptr);
}

TEST_F(TelemetryTest, AttribExclusiveAccountingAndFlush)
{
    setHostAttribEnabled(true);
    StatsRegistry sandbox;
    {
        ProcessRegistryOverride redirect(sandbox);
        AttribRoot root;
        {
            AttribScope raster(HostDomain::Raster);
            spin(0.002);
            {
                // Nested scope: its time must NOT also count as
                // raster (exclusive accounting).
                AttribScope mem(HostDomain::MemWalk);
                spin(0.002);
            }
            spin(0.002);
        }
    }
    const Stat *raster = sandbox.find("obs.host.raster.seconds");
    const Stat *mem = sandbox.find("obs.host.memwalk.seconds");
    ASSERT_NE(raster, nullptr);
    ASSERT_NE(mem, nullptr);
    EXPECT_GT(raster->value(), 0.0);
    EXPECT_GT(mem->value(), 0.0);
    // Raster ran ~4 ms, memwalk ~2 ms; exclusive accounting keeps
    // raster well under the 6 ms total.
    EXPECT_LT(raster->value(), 0.006);
    EXPECT_DOUBLE_EQ(
        sandbox.find("obs.host.raster.entries")->value(), 1.0);
    EXPECT_DOUBLE_EQ(
        sandbox.find("obs.host.memwalk.entries")->value(), 1.0);
}

TEST_F(TelemetryTest, AttribSnapshotComputesNamedCoverage)
{
    setHostAttribEnabled(true);
    StatsRegistry sandbox;
    ProcessRegistryOverride redirect(sandbox);
    {
        AttribRoot root;
        AttribScope shade(HostDomain::Shade);
        spin(0.004);
    }
    const HostAttribSnapshot snap = readHostAttrib();
    EXPECT_GT(snap.totalSeconds(), 0.0);
    // Nearly the whole window is inside the shade scope.
    EXPECT_GT(snap.coverage(), 0.5);
    EXPECT_LE(snap.coverage(), 1.0);
    EXPECT_GT(snap.seconds[static_cast<std::size_t>(
                  HostDomain::Shade)],
              0.0);
}

TEST_F(TelemetryTest, NestedAttribRootIsANoOp)
{
    setHostAttribEnabled(true);
    StatsRegistry sandbox;
    ProcessRegistryOverride redirect(sandbox);
    {
        AttribRoot outer;
        {
            AttribRoot inner; // must not close/flush the window
            AttribScope load(HostDomain::Load);
            spin(0.001);
        }
        // Window is still open: nothing flushed yet.
        EXPECT_EQ(sandbox.find("obs.host.load.seconds"), nullptr);
        AttribScope geom(HostDomain::Geometry);
        spin(0.001);
    }
    EXPECT_NE(sandbox.find("obs.host.load.seconds"), nullptr);
    EXPECT_NE(sandbox.find("obs.host.geometry.seconds"), nullptr);
}

TEST_F(TelemetryTest, LedgerRoundTripsThroughStrictParser)
{
    RunLedger ledger;
    {
        util::Json fields = util::Json::object();
        fields.set("tool", "test");
        fields.set("threads", 4);
        ledger.event("run_start", std::move(fields));
    }
    {
        util::Json fields = util::Json::object();
        fields.set("name", "clustering");
        fields.set("seconds", 1.25);
        ledger.event("phase", std::move(fields));
    }
    {
        util::Json values = util::Json::object();
        values.set("suite_reduction", 88.5);
        util::Json fields = util::Json::object();
        fields.set("values", std::move(values));
        ledger.event("metrics", std::move(fields));
    }
    {
        util::Json fields = util::Json::object();
        fields.set("wall_seconds", 2.5);
        fields.set("status", "ok");
        ledger.event("run_end", std::move(fields));
    }

    auto events = RunLedger::parse(ledger.serialize());
    ASSERT_TRUE(events.ok()) << events.error().message;
    ASSERT_EQ(events->size(), 4u);
    // seq is stamped monotonically.
    for (std::size_t i = 0; i < events->size(); ++i)
        EXPECT_EQ((*events)[i].find("seq")->asNumber(),
                  static_cast<double>(i));

    const LedgerSummary row = summarizeLedger("x.jsonl", *events);
    EXPECT_EQ(row.tool, "test");
    EXPECT_EQ(row.threads, 4u);
    EXPECT_EQ(row.status, "ok");
    EXPECT_DOUBLE_EQ(row.wallSeconds, 2.5);
    ASSERT_EQ(row.metrics.size(), 1u);
    EXPECT_EQ(row.metrics[0].first, "suite_reduction");
    EXPECT_DOUBLE_EQ(row.metrics[0].second, 88.5);
}

TEST_F(TelemetryTest, LedgerRejectsUnknownField)
{
    RunLedger ledger;
    util::Json fields = util::Json::object();
    fields.set("tool", "test");
    fields.set("threads", 1);
    ledger.event("run_start", std::move(fields));

    util::Json ev = ledger.events()[0];
    ev.set("drive_by_field", 1.0);
    auto valid = RunLedger::validateEvent(ev);
    ASSERT_FALSE(valid.ok());
    EXPECT_NE(valid.error().message.find("drive_by_field"),
              std::string::npos);

    // And parse() names the offending line.
    const std::string text = ledger.serialize() + ev.dump(0) + "\n";
    auto parsed = RunLedger::parse(text);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.error().message.find("line 2"),
              std::string::npos);
}

TEST_F(TelemetryTest, LedgerRejectsMissingRequiredAndBadKinds)
{
    util::Json ev = util::Json::object();
    ev.set("schema", RunLedger::kSchema);
    ev.set("seq", 0);
    ev.set("event", "run_start");
    ev.set("t", 0.0);
    ev.set("tool", "test"); // threads missing
    auto missing = RunLedger::validateEvent(ev);
    ASSERT_FALSE(missing.ok());
    EXPECT_NE(missing.error().message.find("threads"),
              std::string::npos);

    ev.set("threads", "eight"); // wrong kind
    auto badKind = RunLedger::validateEvent(ev);
    ASSERT_FALSE(badKind.ok());
    EXPECT_NE(badKind.error().message.find("expected number"),
              std::string::npos);
}

TEST_F(TelemetryTest, LedgerRejectsUnknownEventAndBadSchema)
{
    util::Json ev = util::Json::object();
    ev.set("schema", RunLedger::kSchema);
    ev.set("seq", 0);
    ev.set("event", "no_such_event");
    ev.set("t", 0.0);
    EXPECT_FALSE(RunLedger::validateEvent(ev).ok());

    ev.set("event", "run_end");
    ev.set("schema", "megsim-run-v999");
    auto bad = RunLedger::validateEvent(ev);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, resilience::Errc::BadVersion);
}

TEST_F(TelemetryTest, EmptyLedgerIsTruncated)
{
    auto parsed = RunLedger::parse("");
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code, resilience::Errc::Truncated);
}

TEST_F(TelemetryTest, LedgerSaveLoadRoundTrip)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        "megsim_telemetry_test";
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "run.jsonl").string();

    RunLedger ledger;
    util::Json fields = util::Json::object();
    fields.set("tool", "test");
    fields.set("threads", 2);
    ledger.event("run_start", std::move(fields));
    ASSERT_TRUE(ledger.save(path).ok());

    auto events = RunLedger::load(path);
    ASSERT_TRUE(events.ok()) << events.error().message;
    EXPECT_EQ(events->size(), 1u);
    std::filesystem::remove_all(dir);
}
