/**
 * @file
 * End-to-end test for tools/megsim-cli. The harness passes the built
 * binary's path as argv[1] (see tests/CMakeLists.txt); the test runs
 * the real executable and validates its outputs, covering the
 * acceptance path `megsim-cli trace --frames 0:3 --out trace.json`.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace
{

std::string cliPath;

std::string
slurp(const std::filesystem::path &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Run the CLI with @p args, capture stdout into a file. */
int
runCli(const std::string &args, const std::filesystem::path &stdoutPath)
{
    const std::string cmd =
        cliPath + " " + args + " > " + stdoutPath.string() + " 2>&1";
    return std::system(cmd.c_str());
}

bool
jsonParses(const std::string &text)
{
    std::vector<char> stack;
    bool inString = false;
    bool escaped = false;
    for (char c : text) {
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"': inString = true; break;
          case '[': stack.push_back(']'); break;
          case '{': stack.push_back('}'); break;
          case ']':
          case '}':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return stack.empty() && !inString;
}

std::filesystem::path
tempDir()
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "megsim_cli_test";
    std::filesystem::create_directories(dir);
    return dir;
}

} // namespace

TEST(MegsimCli, TraceExportsChromeJsonCoveringEveryStage)
{
    ASSERT_FALSE(cliPath.empty()) << "pass megsim-cli path as argv[1]";
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path json = dir / "trace.json";
    const std::filesystem::path log = dir / "trace.log";

    const int rc = runCli(
        "trace --bench hcr --frames 0:3 --out " + json.string(), log);
    ASSERT_EQ(rc, 0) << slurp(log);

    const std::string text = slurp(json);
    ASSERT_FALSE(text.empty());
    EXPECT_TRUE(jsonParses(text));
    EXPECT_NE(text.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(text.find("\"ph\""), std::string::npos);
    EXPECT_NE(text.find("\"ts\""), std::string::npos);
    EXPECT_NE(text.find("\"name\""), std::string::npos);

    // At least one event per pipeline stage.
    const char *stages[] = {
        "vertex_fetch", "vertex_shader", "primitive_assembly",
        "binning",      "rasterizer",    "early_z",
        "fragment_shader", "blend", "tile_flush",
    };
    for (const char *stage : stages)
        EXPECT_NE(text.find(std::string("\"") + stage + "\""),
                  std::string::npos)
            << "missing trace events for stage " << stage;
}

TEST(MegsimCli, TraceCsvMirrorsTheRing)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path json = dir / "t.json";
    const std::filesystem::path csv = dir / "t.csv";
    const std::filesystem::path log = dir / "t.log";

    const int rc = runCli("trace --bench hcr --frames 0:1 --out " +
                              json.string() + " --csv " + csv.string(),
                          log);
    ASSERT_EQ(rc, 0) << slurp(log);
    const std::string text = slurp(csv);
    EXPECT_NE(text.find("name,category,frame,begin_cycle,end_cycle,arg"),
              std::string::npos);
    EXPECT_NE(text.find("vertex_shader"), std::string::npos);
}

TEST(MegsimCli, StatsDumpsRegistryCounters)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path log = dir / "stats.log";

    const int rc = runCli("stats --bench hcr --frame 0", log);
    ASSERT_EQ(rc, 0) << slurp(log);
    const std::string text = slurp(log);
    // The registry prints an indented tree: gpu / <unit> / <stat>.
    EXPECT_NE(text.find("gpu\n"), std::string::npos) << text;
    EXPECT_NE(text.find("  l2\n"), std::string::npos);
    EXPECT_NE(text.find("  dram\n"), std::string::npos);
    EXPECT_NE(text.find("  frame\n"), std::string::npos);
    EXPECT_NE(text.find("    cycles"), std::string::npos);
    EXPECT_NE(text.find("    transactions"), std::string::npos);
}

TEST(MegsimCli, StatsFilterRestrictsOutput)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path log = dir / "filtered.log";

    const int rc =
        runCli("stats --bench hcr --frame 0 --filter gpu.l2.*", log);
    ASSERT_EQ(rc, 0) << slurp(log);
    const std::string text = slurp(log);
    EXPECT_NE(text.find("  l2\n"), std::string::npos);
    EXPECT_EQ(text.find("raster"), std::string::npos) << text;
}

TEST(MegsimCli, BadUsageFailsCleanly)
{
    ASSERT_FALSE(cliPath.empty());
    const std::filesystem::path dir = tempDir();
    const std::filesystem::path log = dir / "usage.log";
    EXPECT_NE(runCli("frobnicate", log), 0);
    EXPECT_NE(slurp(log).find("usage:"), std::string::npos);
}

int
main(int argc, char **argv)
{
    if (argc > 1 && argv[1][0] != '-') {
        cliPath = argv[1];
        // Hide the extra argument from gtest's flag parser.
        for (int i = 1; i + 1 < argc; ++i)
            argv[i] = argv[i + 1];
        --argc;
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
