#include <gtest/gtest.h>

#include <sstream>

#include "obs/stats.hh"

using namespace msim::obs;

TEST(Stats, ScalarCountsAndResets)
{
    StatsRegistry registry;
    Scalar &s = registry.scalar("gpu.l2.misses", "L2 misses");
    ++s;
    s += 4.0;
    EXPECT_DOUBLE_EQ(s.value(), 5.0);
    registry.resetPerFrame();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, RegistrationIsIdempotent)
{
    StatsRegistry registry;
    Scalar &a = registry.scalar("gpu.tex.accesses");
    Scalar &b = registry.scalar("gpu.tex.accesses");
    EXPECT_EQ(&a, &b) << "same name+kind must return the same stat";
    ++a;
    EXPECT_DOUBLE_EQ(b.value(), 1.0);
    EXPECT_EQ(registry.size(), 1u);
}

TEST(StatsDeathTest, KindMismatchIsFatal)
{
    StatsRegistry registry;
    registry.scalar("gpu.x");
    EXPECT_DEATH(registry.average("gpu.x"), "gpu.x");
}

TEST(Stats, AverageTracksMean)
{
    StatsRegistry registry;
    Average &avg = registry.average("dram.latency_avg");
    avg.sample(10.0);
    avg.sample(30.0);
    EXPECT_EQ(avg.count(), 2u);
    EXPECT_DOUBLE_EQ(avg.value(), 20.0);
    registry.resetPerFrame();
    EXPECT_EQ(avg.count(), 0u);
    EXPECT_DOUBLE_EQ(avg.value(), 0.0);
}

TEST(Stats, DistributionBucketsAndRange)
{
    StatsRegistry registry;
    Distribution &d =
        registry.distribution("q.occupancy", 0.0, 10.0, 5);
    d.sample(-1.0);      // underflow
    d.sample(0.5);       // bucket 0
    d.sample(9.5);       // bucket 4
    d.sample(11.0, 2);   // overflow, weighted
    EXPECT_EQ(d.count(), 5u);
    EXPECT_EQ(d.underflow(), 1u);
    EXPECT_EQ(d.overflow(), 2u);
    EXPECT_EQ(d.bucket(0), 1u);
    EXPECT_EQ(d.bucket(4), 1u);
    EXPECT_DOUBLE_EQ(d.min(), -1.0);
    EXPECT_DOUBLE_EQ(d.max(), 11.0);
    registry.resetPerFrame();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Stats, FormulaComputesOnReadAndSurvivesReset)
{
    StatsRegistry registry;
    Scalar &hits = registry.scalar("c.hits");
    Scalar &accesses = registry.scalar("c.accesses");
    Formula &rate = registry.formula("c.hit_rate", [&]() {
        return accesses.value() > 0.0 ? hits.value() / accesses.value()
                                      : 0.0;
    });
    hits += 3.0;
    accesses += 4.0;
    EXPECT_DOUBLE_EQ(rate.value(), 0.75);
    registry.resetPerFrame();
    EXPECT_DOUBLE_EQ(rate.value(), 0.0) << "recomputes from reset "
                                           "inputs";
    hits += 1.0;
    accesses += 1.0;
    EXPECT_DOUBLE_EQ(rate.value(), 1.0);
}

TEST(Stats, GroupsPrefixAndNest)
{
    StatsRegistry registry;
    StatsGroup gpu = registry.group("gpu");
    StatsGroup l2 = gpu.group("l2");
    Scalar &misses = l2.scalar("misses");
    ++misses;
    const Stat *found = registry.find("gpu.l2.misses");
    ASSERT_NE(found, nullptr);
    EXPECT_DOUBLE_EQ(found->value(), 1.0);
    EXPECT_EQ(registry.find("gpu.l2.nope"), nullptr);
}

TEST(Stats, VisitAndDumpFilterByGlob)
{
    StatsRegistry registry;
    registry.scalar("gpu.l2.misses") += 2.0;
    registry.scalar("gpu.l2.hits") += 8.0;
    registry.scalar("gpu.dram.accesses") += 5.0;

    std::vector<std::string> names;
    registry.visit([&](const Stat &s) { names.push_back(s.name()); },
                   "gpu.l2.*");
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "gpu.l2.hits") << "visit order is sorted";
    EXPECT_EQ(names[1], "gpu.l2.misses");

    std::ostringstream os;
    registry.dump(os, "gpu.dram.*");
    EXPECT_NE(os.str().find("accesses"), std::string::npos);
    EXPECT_EQ(os.str().find("misses"), std::string::npos);
}
