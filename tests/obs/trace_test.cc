#include <gtest/gtest.h>

#include <sstream>

#include "obs/trace.hh"
#include "obs/trace_export.hh"

using namespace msim::obs;

namespace
{

ObsConfig
enabledConfig(std::size_t capacity)
{
    ObsConfig config;
    config.traceEnabled = true;
    config.traceCapacity = capacity;
    return config;
}

/**
 * Minimal JSON well-formedness check: balanced braces/brackets
 * outside of strings.
 */
bool
jsonParses(const std::string &text)
{
    std::vector<char> stack;
    bool inString = false;
    bool escaped = false;
    for (char c : text) {
        if (inString) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"': inString = true; break;
          case '[': stack.push_back(']'); break;
          case '{': stack.push_back('}'); break;
          case ']':
          case '}':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return stack.empty() && !inString;
}

} // namespace

TEST(TraceBuffer, DisabledByDefaultAndEmitsNothing)
{
    TraceBuffer buf;
    EXPECT_FALSE(buf.enabled());
    buf.emit("stage", TraceCategory::Stage, 0, 0, 10);
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.emittedCount(), 0u);
}

TEST(TraceBuffer, RingKeepsMostRecentAndCountsDrops)
{
    TraceBuffer buf(enabledConfig(4));
    for (std::uint64_t i = 0; i < 6; ++i)
        buf.emit("e", TraceCategory::Stage, 0, i, i + 1, i);
    EXPECT_EQ(buf.size(), 4u);
    EXPECT_EQ(buf.emittedCount(), 6u);
    EXPECT_EQ(buf.droppedCount(), 2u);

    std::vector<std::uint64_t> args;
    buf.forEach(
        [&](const TraceEvent &e) { args.push_back(e.arg); });
    ASSERT_EQ(args.size(), 4u);
    EXPECT_EQ(args.front(), 2u) << "oldest retained first";
    EXPECT_EQ(args.back(), 5u);
}

TEST(TraceBuffer, ClearResets)
{
    TraceBuffer buf(enabledConfig(8));
    buf.instant("i", TraceCategory::Frame, 1, 42);
    EXPECT_EQ(buf.size(), 1u);
    buf.clear();
    EXPECT_EQ(buf.size(), 0u);
}

TEST(ChromeTrace, ExportsParsableJsonWithRequiredFields)
{
    TraceBuffer buf(enabledConfig(16));
    buf.emit("vertex_shader", TraceCategory::Stage, 0, 100, 700, 3);
    buf.emit("fragment_queue", TraceCategory::Queue, 0, 800, 900, 12);
    buf.instant("frame", TraceCategory::Frame, 0, 1000);

    std::ostringstream os;
    writeChromeTrace(os, buf.snapshot(), 600.0);
    const std::string json = os.str();

    EXPECT_TRUE(jsonParses(json)) << json;
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    // Required trace_event fields.
    EXPECT_NE(json.find("\"ph\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\""), std::string::npos);
    EXPECT_NE(json.find("\"name\""), std::string::npos);
    // Event names round-trip.
    EXPECT_NE(json.find("\"vertex_shader\""), std::string::npos);
    EXPECT_NE(json.find("\"fragment_queue\""), std::string::npos);
    // Complete events carry durations, instants use ph:i.
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // Lane labels (Daisen-style unit rows).
    EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(ChromeTrace, TimestampsScaleWithFrequency)
{
    TraceBuffer buf(enabledConfig(4));
    // 600 cycles at 600 MHz = 1 us.
    buf.emit("stage", TraceCategory::Stage, 0, 600, 1200);
    std::ostringstream os;
    writeChromeTrace(os, buf.snapshot(), 600.0);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos) << json;
    EXPECT_NE(json.find("\"dur\":1.000"), std::string::npos) << json;
}

TEST(TraceCsv, RoundTripsEventRows)
{
    TraceBuffer buf(enabledConfig(4));
    buf.emit("dram", TraceCategory::Dram, 2, 10, 60, 64);
    std::ostringstream os;
    writeTraceCsv(os, buf.snapshot());
    const std::string csv = os.str();
    EXPECT_NE(csv.find("name,category,frame,begin_cycle,end_cycle,arg"),
              std::string::npos);
    EXPECT_NE(csv.find("dram,dram,2,10,60,64"), std::string::npos)
        << csv;
}

TEST(ObsConfig, ReadsEnvironment)
{
    ::setenv("MEGSIM_TRACE", "1", 1);
    ::setenv("MEGSIM_TRACE_CAPACITY", "128", 1);
    ::setenv("MEGSIM_STATS_DUMP", "gpu.l2.*", 1);
    const ObsConfig config = ObsConfig::fromEnv();
    EXPECT_TRUE(config.traceEnabled);
    EXPECT_EQ(config.traceCapacity, 128u);
    EXPECT_EQ(config.statsDump, "gpu.l2.*");
    ::unsetenv("MEGSIM_TRACE");
    ::unsetenv("MEGSIM_TRACE_CAPACITY");
    ::unsetenv("MEGSIM_STATS_DUMP");
    const ObsConfig off = ObsConfig::fromEnv();
    EXPECT_FALSE(off.traceEnabled);
    EXPECT_TRUE(off.statsDump.empty());
}
