#include <gtest/gtest.h>

#include <set>
#include <string>

#include "gpusim/functional_simulator.hh"
#include "gpusim/gpu_config.hh"
#include "gpusim/timing_simulator.hh"
#include "workloads/workloads.hh"

using namespace msim;
using namespace msim::gpusim;

namespace
{

/** A short real workload shared by the simulator tests. */
const gfx::SceneTrace &
testScene()
{
    static const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, 4);
    return scene;
}

obs::ObsConfig
tracingOn()
{
    obs::ObsConfig config;
    config.traceEnabled = true;
    config.traceCapacity = 1 << 20;
    return config;
}

} // namespace

TEST(GpuConfig, BaselineMatchesTableI)
{
    const GpuConfig config = GpuConfig::baseline();
    EXPECT_EQ(config.frequencyMhz, 600u);
    EXPECT_EQ(config.screenWidth, 1440u);
    EXPECT_EQ(config.screenHeight, 720u);
    EXPECT_EQ(config.tileWidth, 32u);
    EXPECT_EQ(config.tileHeight, 32u);
    EXPECT_EQ(config.numVertexProcessors, 4u);
    EXPECT_EQ(config.numFragmentProcessors, 4u);
    EXPECT_EQ(config.numTextureCaches, 4u);
    EXPECT_EQ(config.vertexCache.sizeBytes, 4u * 1024);
    EXPECT_EQ(config.textureCache.sizeBytes, 8u * 1024);
    EXPECT_EQ(config.tileCache.sizeBytes, 32u * 1024);
    EXPECT_EQ(config.memory.l2.sizeBytes, 256u * 1024);
    EXPECT_FALSE(config.hsrEnabled);
    EXPECT_EQ(config.tilesX(), 45u);
    EXPECT_EQ(config.tilesY(), 23u);
}

TEST(GpuConfig, FingerprintSeparatesConfigs)
{
    const GpuConfig a = GpuConfig::baseline();
    GpuConfig b = a;
    b.numFragmentProcessors = 8;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    EXPECT_NE(GpuConfig::baseline().fingerprint(),
              GpuConfig::evaluationScaled().fingerprint());
}

TEST(TimingSimulator, ProducesWorkOnARealFrame)
{
    SceneBinding binding(testScene());
    TimingSimulator timing(GpuConfig::evaluationScaled(), binding);
    const FrameStats stats = timing.simulate(testScene().frames[0]);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.vsInvocations, 0u);
    EXPECT_GT(stats.fsInvocations, 0u);
    EXPECT_GT(stats.primitives, 0u);
    EXPECT_GT(stats.l2Accesses, 0u);
    EXPECT_GT(stats.dramAccesses, 0u);
    EXPECT_GT(stats.energy.totalNj(), 0.0);
}

/**
 * Acceptance: FrameStats is assembled from the registry, so a dump of
 * the registry after a frame must agree with the returned struct —
 * single source of truth.
 */
TEST(TimingSimulator, RegistryAgreesWithFrameStats)
{
    SceneBinding binding(testScene());
    TimingSimulator timing(GpuConfig::evaluationScaled(), binding);
    const FrameStats stats = timing.simulate(testScene().frames[1]);

    auto counter = [&](const char *name) {
        const obs::Stat *stat = timing.stats().find(name);
        EXPECT_NE(stat, nullptr) << name;
        return stat ? static_cast<std::uint64_t>(stat->value()) : 0u;
    };
    EXPECT_EQ(counter("gpu.frame.cycles"), stats.cycles);
    EXPECT_EQ(counter("gpu.frame.stall_cycles"), stats.stallCycles);
    EXPECT_EQ(counter("gpu.geometry.vs_invocations"),
              stats.vsInvocations);
    EXPECT_EQ(counter("gpu.geometry.vs_instructions"),
              stats.vsInstructions);
    EXPECT_EQ(counter("gpu.raster.fs_invocations"),
              stats.fsInvocations);
    EXPECT_EQ(counter("gpu.raster.fs_instructions"),
              stats.fsInstructions);
    EXPECT_EQ(counter("gpu.tiling.triangles"), stats.primitives);
    EXPECT_EQ(counter("gpu.vertex_cache.accesses"),
              stats.vertexCacheAccesses);
    EXPECT_EQ(counter("gpu.texture_cache.accesses"),
              stats.textureCacheAccesses);
    EXPECT_EQ(counter("gpu.tile_cache.accesses"),
              stats.tileCacheAccesses);
    EXPECT_EQ(counter("gpu.l2.accesses"), stats.l2Accesses);
    EXPECT_EQ(counter("gpu.dram.transactions"), stats.dramAccesses);
    EXPECT_EQ(counter("gpu.dram.bytes"), stats.dramBytes);
    EXPECT_EQ(counter("gpu.raster.earlyz_kills"), stats.earlyZKills);
}

TEST(TimingSimulator, RepeatedSimulationIsDeterministic)
{
    SceneBinding binding(testScene());
    TimingSimulator timing(GpuConfig::evaluationScaled(), binding);
    const FrameStats a = timing.simulate(testScene().frames[0]);
    const FrameStats b = timing.simulate(testScene().frames[0]);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.fsInvocations, b.fsInvocations);
}

/**
 * Per-frame cold start: simulating frame 2 directly must match
 * simulating it after other frames. Representative-only simulation
 * (the core MEGsim speedup) depends on this.
 */
TEST(TimingSimulator, FrameResultsAreOrderIndependent)
{
    SceneBinding binding(testScene());
    TimingSimulator warm(GpuConfig::evaluationScaled(), binding);
    warm.simulate(testScene().frames[0]);
    warm.simulate(testScene().frames[1]);
    const FrameStats after = warm.simulate(testScene().frames[2]);

    TimingSimulator cold(GpuConfig::evaluationScaled(), binding);
    const FrameStats direct = cold.simulate(testScene().frames[2]);
    EXPECT_EQ(after.cycles, direct.cycles);
    EXPECT_EQ(after.l2Accesses, direct.l2Accesses);
    EXPECT_EQ(after.dramAccesses, direct.dramAccesses);
}

TEST(TimingSimulator, HsrNeverShadesMoreFragments)
{
    SceneBinding binding(testScene());
    GpuConfig config = GpuConfig::evaluationScaled();
    TimingSimulator tbr(config, binding);
    const FrameStats earlyZ = tbr.simulate(testScene().frames[0]);

    config.hsrEnabled = true;
    TimingSimulator tbdr(config, binding);
    const FrameStats hsr = tbdr.simulate(testScene().frames[0]);
    EXPECT_LE(hsr.fsInvocations, earlyZ.fsInvocations);
    EXPECT_GT(hsr.fsInvocations, 0u);
}

TEST(TimingSimulator, ActivityAgreesWithFunctionalSimulator)
{
    SceneBinding binding(testScene());
    const GpuConfig config = GpuConfig::evaluationScaled();

    FunctionalSimulator functional(config, binding);
    const FrameActivity fn = functional.simulate(testScene().frames[0]);

    TimingSimulator timing(config, binding);
    FrameActivity fromTiming;
    timing.simulate(testScene().frames[0], &fromTiming);

    EXPECT_EQ(fn.primitives, fromTiming.primitives);
    EXPECT_EQ(fn.verticesShaded, fromTiming.verticesShaded);
    EXPECT_EQ(fn.fragmentsShaded, fromTiming.fragmentsShaded);
    EXPECT_EQ(fn.vsCounts, fromTiming.vsCounts);
    EXPECT_EQ(fn.fsCounts, fromTiming.fsCounts);
}

TEST(TimingSimulator, TracingEmitsEveryPipelineStage)
{
    SceneBinding binding(testScene());
    TimingSimulator timing(GpuConfig::evaluationScaled(), binding,
                           tracingOn());
    timing.simulate(testScene().frames[0]);

    std::set<std::string> names;
    timing.trace().forEach(
        [&](const obs::TraceEvent &e) { names.insert(e.name); });
    const char *stages[] = {
        "vertex_fetch", "vertex_shader", "primitive_assembly",
        "binning",      "rasterizer",    "early_z",
        "fragment_shader", "blend", "tile_flush",
    };
    for (const char *stage : stages)
        EXPECT_TRUE(names.count(stage)) << "no events for " << stage;
    EXPECT_TRUE(names.count("frame"));
    EXPECT_TRUE(names.count("dram"));
}

TEST(TimingSimulator, TracingOffEmitsNothing)
{
    SceneBinding binding(testScene());
    obs::ObsConfig off;
    off.traceEnabled = false;
    TimingSimulator timing(GpuConfig::evaluationScaled(), binding,
                           off);
    timing.simulate(testScene().frames[0]);
    EXPECT_EQ(timing.trace().size(), 0u);
    EXPECT_EQ(timing.trace().emittedCount(), 0u);
}

TEST(FrameStats, CsvSchemaRoundTrips)
{
    SceneBinding binding(testScene());
    TimingSimulator timing(GpuConfig::evaluationScaled(), binding);
    const FrameStats stats = timing.simulate(testScene().frames[0]);

    const std::vector<double> row = stats.toCsvRow();
    ASSERT_EQ(row.size(), FrameStats::csvHeader().size());
    const FrameStats back = FrameStats::fromCsvRow(row);
    EXPECT_EQ(back.cycles, stats.cycles);
    EXPECT_EQ(back.fsInvocations, stats.fsInvocations);
    EXPECT_EQ(back.dramBytes, stats.dramBytes);
    EXPECT_DOUBLE_EQ(back.energy.rasterNj, stats.energy.rasterNj);
    EXPECT_DOUBLE_EQ(back.ipc(), stats.ipc());
}
