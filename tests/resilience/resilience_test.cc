#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/megsim.hh"
#include "obs/stats.hh"
#include "resilience/artifact.hh"
#include "resilience/checkpoint.hh"
#include "resilience/checksum.hh"
#include "resilience/degrade.hh"
#include "resilience/expected.hh"
#include "resilience/fault.hh"
#include "util/csv.hh"
#include "workloads/workloads.hh"

using namespace msim;
using namespace msim::resilience;

namespace
{

/** Fresh per-test scratch directory; faults disarmed on both ends. */
class ResilienceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        FaultInjector::setGlobalSpec("");
        dir_ = std::filesystem::temp_directory_path() /
               ("megsim_resilience_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
    }

    void
    TearDown() override
    {
        FaultInjector::setGlobalSpec("");
        std::filesystem::remove_all(dir_);
    }

    std::string
    path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::filesystem::path dir_;
};

util::CsvTable
sampleTable()
{
    util::CsvTable table;
    table.header = {"a", "b", "c"};
    table.rows = {{1.0, 2.0, 3.0}, {4.5, -6.0, 7.25}, {8.0, 9.0, 10.0}};
    return table;
}

std::string
slurp(const std::string &p)
{
    std::ifstream in(p, std::ios::binary);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    return text;
}

void
spit(const std::string &p, const std::string &text)
{
    std::ofstream out(p, std::ios::binary | std::ios::trunc);
    out << text;
}

} // namespace

TEST(Expected, HoldsValueOrError)
{
    Expected<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(*good, 7);

    Expected<int> bad(errorf(Errc::Truncated, "only %d rows", 3));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, Errc::Truncated);
    EXPECT_EQ(bad.error().message, "only 3 rows");

    Expected<void> fine;
    EXPECT_TRUE(fine.ok());
    Expected<void> broken(Error{Errc::Io, "disk on fire"});
    ASSERT_FALSE(broken.ok());
    EXPECT_EQ(broken.error().code, Errc::Io);
    EXPECT_STREQ(errcName(Errc::BadChecksum), "bad-checksum");
}

TEST(ChecksumTest, Fnv1aMatchesReferenceAndSeesEveryByte)
{
    // Published FNV-1a 64 reference vectors.
    EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);

    EXPECT_NE(fnv1a("megsim"), fnv1a("megsiM"));

    Checksum streaming;
    streaming.update("meg");
    streaming.update("sim");
    EXPECT_EQ(streaming.digest(), fnv1a("megsim"));
}

TEST(FaultSpec, ParsesClausesAndRejectsGarbage)
{
    auto multi = FaultInjector::parse(
        "io.read:p=0.5,seed=7; frame.hang:frame=42 ;cache.corrupt");
    ASSERT_TRUE(multi.ok());
    EXPECT_EQ(multi->clauseCount(), 3u);

    EXPECT_TRUE(FaultInjector::parse("").ok());
    EXPECT_FALSE(FaultInjector::parse("disk.melt").ok());
    EXPECT_FALSE(FaultInjector::parse("io.read:banana").ok());
    EXPECT_FALSE(FaultInjector::parse("io.read:volume=11").ok());
}

TEST_F(ResilienceTest, FaultMatchingRespectsKindAndProbability)
{
    FaultInjector::setGlobalSpec("cache.corrupt:kind=stats");
    EXPECT_TRUE(FaultInjector::global().corruptCache("stats"));
    EXPECT_FALSE(FaultInjector::global().corruptCache("activity"));

    // p=0 never fires, p=1 always does.
    FaultInjector::setGlobalSpec("io.read:p=0");
    for (int i = 0; i < 50; ++i)
        EXPECT_FALSE(FaultInjector::global().failRead("x.csv"));
    FaultInjector::setGlobalSpec("io.read");
    EXPECT_TRUE(FaultInjector::global().failRead("x.csv"));

    // A bad spec must arm nothing rather than half-arm.
    FaultInjector::setGlobalSpec("io.read; disk.melt");
    EXPECT_FALSE(FaultInjector::global().enabled());

    FaultInjector::setGlobalSpec("frame.hang:frame=3");
    EXPECT_FALSE(FaultInjector::global().hangFrame(2));
    EXPECT_TRUE(FaultInjector::global().hangFrame(3));
}

TEST_F(ResilienceTest, ArtifactRoundTrips)
{
    const util::CsvTable table = sampleTable();
    ASSERT_TRUE(
        writeCsvArtifact(path("a.csv"), table, 0xfeedULL, "stats").ok());

    auto loaded = readCsvArtifact(path("a.csv"), 0xfeedULL, "stats");
    ASSERT_TRUE(loaded.ok());
    EXPECT_EQ(loaded->header, table.header);
    EXPECT_EQ(loaded->rows, table.rows);

    // No temp file left behind by the atomic write.
    EXPECT_FALSE(std::filesystem::exists(path("a.csv") + ".tmp"));
}

TEST_F(ResilienceTest, ArtifactDetectsMissingStaleAndCorrupt)
{
    const util::CsvTable table = sampleTable();
    ASSERT_TRUE(
        writeCsvArtifact(path("a.csv"), table, 0xfeedULL, "stats").ok());
    const std::string pristine = slurp(path("a.csv"));

    auto missing = readCsvArtifact(path("nope.csv"), 0xfeedULL, "stats");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, Errc::NotFound);

    auto stale = readCsvArtifact(path("a.csv"), 0xbeefULL, "stats");
    ASSERT_FALSE(stale.ok());
    EXPECT_EQ(stale.error().code, Errc::BadFingerprint);

    // Truncation: drop the last full row.
    std::string cut = pristine;
    cut.erase(cut.find_last_of('\n', cut.size() - 2) + 1);
    spit(path("a.csv"), cut);
    auto truncated = readCsvArtifact(path("a.csv"), 0xfeedULL, "stats");
    ASSERT_FALSE(truncated.ok());
    EXPECT_EQ(truncated.error().code, Errc::Truncated);

    // Bit rot: flip one payload digit (CSV still parses).
    std::string flipped = pristine;
    const std::size_t digit = flipped.find("4.5");
    ASSERT_NE(digit, std::string::npos);
    flipped[digit] = '9';
    spit(path("a.csv"), flipped);
    auto rotten = readCsvArtifact(path("a.csv"), 0xfeedULL, "stats");
    ASSERT_FALSE(rotten.ok());
    EXPECT_EQ(rotten.error().code, Errc::BadChecksum);

    // Injected corruption via the fault layer.
    spit(path("a.csv"), pristine);
    FaultInjector::setGlobalSpec("cache.corrupt:kind=stats");
    auto injected = readCsvArtifact(path("a.csv"), 0xfeedULL, "stats");
    ASSERT_FALSE(injected.ok());
    EXPECT_EQ(injected.error().code, Errc::Injected);
}

TEST_F(ResilienceTest, AtomicWriteSurvivesInjectedWriteFailure)
{
    const util::CsvTable table = sampleTable();
    ASSERT_TRUE(
        writeCsvArtifact(path("a.csv"), table, 1ULL, "stats").ok());
    const std::string pristine = slurp(path("a.csv"));

    FaultInjector::setGlobalSpec("io.write");
    EXPECT_FALSE(
        writeCsvArtifact(path("a.csv"), sampleTable(), 2ULL, "stats")
            .ok());
    // The failed write must not have clobbered the existing artifact.
    EXPECT_EQ(slurp(path("a.csv")), pristine);
}

TEST_F(ResilienceTest, CheckpointRoundTripsAndIgnoresTornTail)
{
    const std::vector<std::vector<double>> stats = {
        {0, 10.5}, {1, 11.5}, {2, 12.5}};
    const std::vector<std::vector<double>> acts = {
        {0, 1}, {1, 2}, {2, 3}};

    {
        Checkpoint ckpt(path("bench"), 0xabcULL, 5, 2, 2);
        EXPECT_EQ(ckpt.resume(), 0u);
        for (std::size_t f = 0; f < 3; ++f)
            ckpt.append(stats[f], acts[f]);
        EXPECT_EQ(ckpt.frames(), 3u);
    }

    // A kill mid-append leaves at worst a torn journal line.
    {
        std::ofstream torn(path("bench") + ".ckpt.stats.jnl",
                           std::ios::app);
        torn << "3,13.5"; // no checksum, no newline
    }

    Checkpoint ckpt(path("bench"), 0xabcULL, 5, 2, 2);
    EXPECT_EQ(ckpt.resume(), 3u);
    EXPECT_EQ(ckpt.statsRows(), stats);
    EXPECT_EQ(ckpt.activityRows(), acts);

    // Appending after resume continues the sequence.
    ckpt.append({3, 13.5}, {3, 4});
    EXPECT_EQ(ckpt.frames(), 4u);

    ckpt.discard();
    EXPECT_FALSE(
        std::filesystem::exists(path("bench") + ".ckpt.manifest"));
    EXPECT_FALSE(
        std::filesystem::exists(path("bench") + ".ckpt.stats.jnl"));
}

TEST_F(ResilienceTest, CheckpointRejectsForeignManifest)
{
    {
        Checkpoint ckpt(path("bench"), 0xabcULL, 5, 2, 2);
        ckpt.resume();
        ckpt.append({0, 1}, {0, 1});
    }
    // Same stem, different scene/config fingerprint: start over.
    Checkpoint other(path("bench"), 0xdefULL, 5, 2, 2);
    EXPECT_EQ(other.resume(), 0u);
}

TEST_F(ResilienceTest, GroundTruthSurvivesSigkillAndResumesIdentically)
{
    const gfx::SceneTrace scene = workloads::buildBenchmark("hcr", 1.0, 5);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();

    // Uninterrupted reference, no caching involved.
    megsim::BenchmarkData reference(scene, config, "");
    const std::vector<gpusim::FrameStats> expected =
        reference.frameStats();
    ASSERT_EQ(expected.size(), 5u);

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // In the child: die by injected SIGKILL right after frame 2
        // is checkpointed. Reaching _exit means the fault never fired.
        FaultInjector::setGlobalSpec("run.kill:frame=2");
        megsim::BenchmarkData doomed(scene, config, dir_.string());
        doomed.frameStats();
        _exit(42);
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    const double resumedBefore =
        obs::processRegistry()
            .scalar("resilience.checkpoint.frames_resumed", "")
            .value();

    megsim::BenchmarkData survivor(scene, config, dir_.string());
    const std::vector<gpusim::FrameStats> resumed =
        survivor.frameStats();
    ASSERT_EQ(resumed.size(), expected.size());
    for (std::size_t f = 0; f < expected.size(); ++f)
        EXPECT_EQ(resumed[f].toCsvRow(), expected[f].toCsvRow())
            << "frame " << f;

    // Frames 0..2 came from the checkpoint, not recomputation.
    EXPECT_EQ(obs::processRegistry()
                  .scalar("resilience.checkpoint.frames_resumed", "")
                  .value(),
              resumedBefore + 3.0);

    // The finished pass cleans its checkpoint up and leaves caches.
    const std::string statsPath = survivor.cachePath("stats");
    const std::string stem =
        statsPath.substr(0, statsPath.rfind("_stats"));
    EXPECT_FALSE(std::filesystem::exists(stem + ".ckpt.manifest"));
    EXPECT_TRUE(std::filesystem::exists(statsPath));
}

TEST_F(ResilienceTest, KillBetweenCacheStoresKeepsJournalForResume)
{
    // The exact window the discard-ordering fix covers: the stats
    // cache has landed, the activity cache has not, and the journal
    // must still hold every committed frame.
    const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, 5);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();

    megsim::BenchmarkData reference(scene, config, "");
    const std::vector<gpusim::FrameStats> expected =
        reference.frameStats();

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        FaultInjector::setGlobalSpec("run.kill:site=cache.store");
        megsim::BenchmarkData doomed(scene, config, dir_.string());
        doomed.frameStats();
        _exit(42);
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    megsim::BenchmarkData survivor(scene, config, dir_.string());
    const std::string statsPath = survivor.cachePath("stats");
    const std::string stem =
        statsPath.substr(0, statsPath.rfind("_stats"));

    // Stats cache stored, activity cache missing — and the journal
    // survived the window, still resumable for all 5 frames.
    EXPECT_TRUE(std::filesystem::exists(statsPath));
    EXPECT_FALSE(
        std::filesystem::exists(survivor.cachePath("activity")));
    ASSERT_TRUE(std::filesystem::exists(stem + ".ckpt.manifest"));
    {
        Checkpoint ckpt(stem, survivor.cacheKey(), 5,
                        gpusim::FrameStats::csvHeader().size(),
                        4 + scene.numVertexShaders() +
                            scene.numFragmentShaders());
        EXPECT_EQ(ckpt.resume(), 5u);
    }

    // The next run completes with identical rows.
    const std::vector<gpusim::FrameStats> resumed =
        survivor.frameStats();
    ASSERT_EQ(resumed.size(), expected.size());
    for (std::size_t f = 0; f < expected.size(); ++f)
        EXPECT_EQ(resumed[f].toCsvRow(), expected[f].toCsvRow())
            << "frame " << f;
}

TEST_F(ResilienceTest, KillBeforeJournalDiscardLeavesLoadedCaches)
{
    // One tick later: both stores landed, the discard did not. The
    // caches must verify, and the stale journal must stay harmless.
    const gfx::SceneTrace scene =
        workloads::buildBenchmark("hcr", 1.0, 5);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();

    megsim::BenchmarkData reference(scene, config, "");
    const std::vector<gpusim::FrameStats> expected =
        reference.frameStats();

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        FaultInjector::setGlobalSpec("run.kill:site=ckpt.discard");
        megsim::BenchmarkData doomed(scene, config, dir_.string());
        doomed.frameStats();
        _exit(42);
    }
    int status = 0;
    ASSERT_EQ(waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status));
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    megsim::BenchmarkData survivor(scene, config, dir_.string());
    EXPECT_TRUE(readCsvArtifact(survivor.cachePath("stats"),
                                survivor.cacheKey(), "stats")
                    .ok());
    EXPECT_TRUE(readCsvArtifact(survivor.cachePath("activity"),
                                survivor.cacheKey(), "activity")
                    .ok());
    EXPECT_EQ(survivor.probeCaches(), megsim::CacheProbe::Loaded);
    const std::vector<gpusim::FrameStats> loaded =
        survivor.frameStats();
    ASSERT_EQ(loaded.size(), expected.size());
    for (std::size_t f = 0; f < expected.size(); ++f)
        EXPECT_EQ(loaded[f].toCsvRow(), expected[f].toCsvRow())
            << "frame " << f;
}

TEST_F(ResilienceTest, CorruptedCacheIsDetectedAndRegenerated)
{
    const gfx::SceneTrace scene = workloads::buildBenchmark("hcr", 1.0, 4);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();

    megsim::BenchmarkData writer(scene, config, dir_.string());
    const std::vector<gpusim::FrameStats> expected =
        writer.frameStats();
    ASSERT_TRUE(std::filesystem::exists(writer.cachePath("stats")));

    // Flip a payload byte in the stats cache.
    std::string text = slurp(writer.cachePath("stats"));
    const std::size_t tail = text.find_last_of("0123456789");
    ASSERT_NE(tail, std::string::npos);
    text[tail] = text[tail] == '7' ? '8' : '7';
    spit(writer.cachePath("stats"), text);

    const double detectedBefore =
        obs::processRegistry()
            .scalar("resilience.cache.corrupt_detected", "")
            .value();

    megsim::BenchmarkData reader(scene, config, dir_.string());
    const std::vector<gpusim::FrameStats> regenerated =
        reader.frameStats();
    ASSERT_EQ(regenerated.size(), expected.size());
    for (std::size_t f = 0; f < expected.size(); ++f)
        EXPECT_EQ(regenerated[f].toCsvRow(), expected[f].toCsvRow());
    EXPECT_GT(obs::processRegistry()
                  .scalar("resilience.cache.corrupt_detected", "")
                  .value(),
              detectedBefore);

    // The regenerated artifact is valid again.
    EXPECT_TRUE(readCsvArtifact(reader.cachePath("stats"),
                                reader.cacheKey(), "stats")
                    .ok());
}

TEST_F(ResilienceTest, InjectedIoFaultsDegradeGracefully)
{
    const gfx::SceneTrace scene = workloads::buildBenchmark("hcr", 1.0, 3);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();

    // io.read: a populated cache becomes unreadable; the pass
    // regenerates instead of trusting or crashing.
    megsim::BenchmarkData writer(scene, config, dir_.string());
    writer.frameStats();
    FaultInjector::setGlobalSpec("io.read");
    megsim::BenchmarkData blindReader(scene, config, dir_.string());
    EXPECT_EQ(blindReader.frameStats().size(), 3u);

    // io.write: nothing persists, but the run itself succeeds.
    FaultInjector::setGlobalSpec("io.write");
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    megsim::BenchmarkData mute(scene, config, dir_.string());
    EXPECT_EQ(mute.frameStats().size(), 3u);
    EXPECT_FALSE(std::filesystem::exists(mute.cachePath("stats")));
}

TEST_F(ResilienceTest, RankClusterMembersOrdersByCentroidDistance)
{
    // Two well-separated 1-D clusters.
    megsim::FeatureMatrix m(6, 0, 0);
    const double values[6] = {0.0, 1.0, 0.5, 100.0, 101.0, 100.2};
    for (std::size_t f = 0; f < 6; ++f)
        m.at(f, 0) = values[f];

    megsim::KMeansConfig kc;
    const megsim::KMeansResult clustering = megsim::kmeans(m, 2, kc);
    const megsim::RankedClusters ranked =
        megsim::rankClusterMembers(m, clustering);
    const megsim::RepresentativeSet reps =
        megsim::representativeSet(m, clustering);

    ASSERT_EQ(ranked.members.size(), reps.frames.size());
    std::size_t total = 0;
    for (std::size_t c = 0; c < ranked.members.size(); ++c) {
        ASSERT_FALSE(ranked.members[c].empty());
        // The closest-ranked member is exactly the representative.
        EXPECT_EQ(ranked.members[c][0], reps.frames[c]);
        EXPECT_DOUBLE_EQ(ranked.weights[c], reps.weights[c]);
        total += ranked.members[c].size();
    }
    EXPECT_EQ(total, 6u);
}

TEST_F(ResilienceTest, DegradationFallsBackWithinTheCluster)
{
    megsim::RankedClusters ranked;
    ranked.members = {{0, 1, 2}, {3, 4}};
    ranked.weights = {3.0, 2.0};

    auto simulate = [](std::size_t frame) -> Expected<gpusim::FrameStats> {
        if (frame == 0)
            return errorf(Errc::FrameTimeout, "frame %zu hung", frame);
        gpusim::FrameStats stats;
        stats.cycles = 100 * (frame + 1);
        return stats;
    };

    auto estimate = estimateWithDegradation(
        ranked, gpusim::Metric::Cycles, simulate);
    ASSERT_TRUE(estimate.ok());
    // Cluster 0 fell back from frame 0 to frame 1; cluster 1 intact.
    EXPECT_EQ(estimate->frames, (std::vector<std::size_t>{1, 3}));
    EXPECT_DOUBLE_EQ(estimate->total, 3.0 * 200.0 + 2.0 * 400.0);
    EXPECT_TRUE(estimate->report.degraded());
    EXPECT_EQ(estimate->report.quarantined, 1u);
    EXPECT_EQ(estimate->report.fallbacks, 1u);
    EXPECT_EQ(estimate->report.exhausted, 0u);
    EXPECT_EQ(estimate->report.quarantinedFrames,
              (std::vector<std::size_t>{0}));

    // An exhausted cluster is dropped; all-exhausted is an error.
    auto alwaysFail =
        [](std::size_t frame) -> Expected<gpusim::FrameStats> {
        return errorf(Errc::FrameTimeout, "frame %zu hung", frame);
    };
    auto none = estimateWithDegradation(ranked, gpusim::Metric::Cycles,
                                        alwaysFail);
    ASSERT_FALSE(none.ok());
    EXPECT_EQ(none.error().code, Errc::Exhausted);
}

TEST_F(ResilienceTest, HangFaultQuarantinesRepresentativeEndToEnd)
{
    const gfx::SceneTrace scene = workloads::buildBenchmark("hcr", 1.0, 6);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();
    megsim::BenchmarkData data(scene, config, "");
    megsim::MegsimPipeline pipeline(data);
    const megsim::MegsimRun run = pipeline.run();
    ASSERT_FALSE(run.representatives.frames.empty());

    // Hang the first chosen representative; the estimate must still
    // come out, served by a fallback frame.
    const std::size_t victim = run.representatives.frames[0];
    FaultInjector::setGlobalSpec(
        "frame.hang:frame=" + std::to_string(victim));

    WatchdogConfig watchdog; // no budgets; only the injected hang
    auto estimate = estimateResilient(pipeline, run,
                                      gpusim::Metric::Cycles, watchdog);
    ASSERT_TRUE(estimate.ok());
    EXPECT_GT(estimate->total, 0.0);
    EXPECT_EQ(estimate->report.quarantined, 1u);
    EXPECT_EQ(estimate->report.quarantinedFrames,
              (std::vector<std::size_t>{victim}));
    for (std::size_t frame : estimate->frames)
        EXPECT_NE(frame, victim);

    // Without faults the same pass is clean and uses the original
    // representatives.
    FaultInjector::setGlobalSpec("");
    auto clean = estimateResilient(pipeline, run,
                                   gpusim::Metric::Cycles, watchdog);
    ASSERT_TRUE(clean.ok());
    EXPECT_FALSE(clean->report.degraded());
    EXPECT_EQ(clean->frames[0], victim);
}

TEST_F(ResilienceTest, WatchdogCycleBudgetTimesOut)
{
    const gfx::SceneTrace scene = workloads::buildBenchmark("hcr", 1.0, 2);
    const gpusim::GpuConfig config =
        gpusim::GpuConfig::evaluationScaled();

    WatchdogConfig tight;
    tight.cycleBudget = 1; // every real frame blows this
    GuardedFrameSimulator guarded(scene, config, tight);
    auto timedOut = guarded.simulate(0);
    ASSERT_FALSE(timedOut.ok());
    EXPECT_EQ(timedOut.error().code, Errc::FrameTimeout);

    WatchdogConfig roomy; // budgets disabled
    GuardedFrameSimulator relaxed(scene, config, roomy);
    auto stats = relaxed.simulate(0);
    ASSERT_TRUE(stats.ok());
    EXPECT_GT(stats->cycles, 1u);
}

TEST(WorkloadErrors, UnknownAliasSuggestsClosestMatch)
{
    auto spec = workloads::findBenchmarkSpec("bbr3");
    ASSERT_FALSE(spec.ok());
    EXPECT_EQ(spec.error().code, Errc::UnknownAlias);
    EXPECT_NE(spec.error().message.find("did you mean 'bbr1'"),
              std::string::npos);
    EXPECT_NE(spec.error().message.find("asp"), std::string::npos);

    auto scene = workloads::tryBuildBenchmark("nope");
    ASSERT_FALSE(scene.ok());
    EXPECT_EQ(scene.error().code, Errc::UnknownAlias);
    // Nothing within distance 3 of "nope": no bogus suggestion.
    EXPECT_EQ(scene.error().message.find("did you mean"),
              std::string::npos);

    ASSERT_TRUE(workloads::findBenchmarkSpec("hcr").ok());
    EXPECT_TRUE(workloads::tryBuildBenchmark("hcr", 1.0, 1).ok());
}
