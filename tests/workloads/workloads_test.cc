#include <gtest/gtest.h>

#include "workloads/workloads.hh"

using namespace msim;
using namespace msim::workloads;

namespace
{

bool
drawsEqual(const gfx::DrawCall &a, const gfx::DrawCall &b)
{
    return a.meshId == b.meshId && a.vsId == b.vsId &&
           a.fsId == b.fsId && a.textureId == b.textureId &&
           a.transparent == b.transparent && a.x == b.x && a.y == b.y &&
           a.depth == b.depth && a.scale == b.scale &&
           a.rotation == b.rotation;
}

} // namespace

TEST(Workloads, TableIiListsEightBenchmarks)
{
    const std::vector<std::string> &names = benchmarkNames();
    ASSERT_EQ(names.size(), 8u);
    const std::vector<std::string> expected = {
        "asp", "bbr1", "bbr2", "hcr", "hwh", "jjo", "pvz", "spd"};
    EXPECT_EQ(names, expected);
}

TEST(Workloads, EveryBenchmarkComposesAndValidates)
{
    for (const std::string &alias : benchmarkNames()) {
        const GameSpec spec = benchmarkSpec(alias);
        EXPECT_GE(spec.frames, 2000u) << alias;
        const gfx::SceneTrace scene = buildBenchmark(alias, 1.0, 32);
        EXPECT_EQ(scene.numFrames(), 32u) << alias;
        EXPECT_EQ(scene.validate(), "") << alias;
        EXPECT_GT(scene.frames[0].draws.size(), 0u) << alias;
        EXPECT_EQ(scene.numVertexShaders(),
                  static_cast<std::size_t>(spec.numVertexShaders))
            << alias;
        EXPECT_EQ(scene.numFragmentShaders(),
                  static_cast<std::size_t>(spec.numFragmentShaders))
            << alias;
    }
}

/**
 * Truncated builds must be an exact prefix of longer builds: fig5/fig6
 * results at 900 frames and MEGSIM_FRAME_LIMIT runs stay consistent
 * with the full sequences.
 */
TEST(Workloads, TruncationIsPrefixStable)
{
    const gfx::SceneTrace shortRun = buildBenchmark("bbr1", 1.0, 16);
    const gfx::SceneTrace longRun = buildBenchmark("bbr1", 1.0, 64);
    ASSERT_EQ(shortRun.numFrames(), 16u);
    ASSERT_EQ(longRun.numFrames(), 64u);
    EXPECT_NE(shortRun.contentHash(), longRun.contentHash());

    for (std::size_t f = 0; f < shortRun.numFrames(); ++f) {
        const auto &a = shortRun.frames[f].draws;
        const auto &b = longRun.frames[f].draws;
        ASSERT_EQ(a.size(), b.size()) << "frame " << f;
        for (std::size_t d = 0; d < a.size(); ++d)
            ASSERT_TRUE(drawsEqual(a[d], b[d]))
                << "frame " << f << " draw " << d;
    }
}

TEST(Workloads, CompositionIsDeterministic)
{
    const gfx::SceneTrace a = buildBenchmark("spd", 1.0, 8);
    const gfx::SceneTrace b = buildBenchmark("spd", 1.0, 8);
    EXPECT_EQ(a.contentHash(), b.contentHash());
}

TEST(Workloads, ScaleThinsSpritePopulations)
{
    const gfx::SceneTrace full = buildBenchmark("pvz", 1.0, 8);
    const gfx::SceneTrace thin = buildBenchmark("pvz", 0.25, 8);
    std::size_t fullDraws = 0, thinDraws = 0;
    for (std::size_t f = 0; f < 8; ++f) {
        fullDraws += full.frames[f].draws.size();
        thinDraws += thin.frames[f].draws.size();
    }
    EXPECT_LT(thinDraws, fullDraws);
    EXPECT_GT(thinDraws, 0u);
}

TEST(Workloads, UnknownAliasIsFatal)
{
    EXPECT_DEATH(benchmarkSpec("doom"), "doom");
}

TEST(Workloads, DrawOrderPutsBackdropsFirstAndOverlaysLast)
{
    // Draws are grouped Backdrop -> Sprite -> Overlay (painter's
    // order between bands; sprites rely on the depth test).
    const gfx::SceneTrace scene = buildBenchmark("hcr", 1.0, 4);
    for (const gfx::FrameTrace &frame : scene.frames) {
        ASSERT_GE(frame.draws.size(), 2u);
        EXPECT_GT(frame.draws.front().depth, 0.9f)
            << "frame " << frame.index << " must start with a backdrop";
        EXPECT_LT(frame.draws.back().depth, 0.2f)
            << "frame " << frame.index << " must end with an overlay";
    }
}
