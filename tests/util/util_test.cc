#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "util/csv.hh"
#include "util/glob.hh"
#include "util/image.hh"
#include "util/summary.hh"

using namespace msim::util;

namespace
{

std::filesystem::path
tempFile(const char *name)
{
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "megsim_util_test";
    std::filesystem::create_directories(dir);
    return dir / name;
}

} // namespace

TEST(Csv, RoundTripsTable)
{
    CsvTable table;
    table.header = {"frame", "cycles", "ipc"};
    table.rows = {{0.0, 1000.0, 1.5}, {1.0, 2000.0, 0.25}};
    const std::filesystem::path path = tempFile("roundtrip.csv");
    writeCsv(path.string(), table);

    CsvTable back;
    ASSERT_TRUE(readCsv(path.string(), back));
    ASSERT_EQ(back.header, table.header);
    ASSERT_EQ(back.rows.size(), 2u);
    EXPECT_DOUBLE_EQ(back.rows[1][1], 2000.0);
    EXPECT_DOUBLE_EQ(back.rows[1][2], 0.25);
}

TEST(Csv, ReadFailsOnMissingFile)
{
    CsvTable table;
    EXPECT_FALSE(readCsv("/nonexistent/definitely_not_here.csv", table));
}

TEST(Glob, MatchesStarQuestionAndLiterals)
{
    EXPECT_TRUE(globMatch("*", "anything.at.all"));
    EXPECT_TRUE(globMatch("gpu.l2.*", "gpu.l2.misses"));
    EXPECT_FALSE(globMatch("gpu.l2.*", "gpu.dram.misses"));
    EXPECT_TRUE(globMatch("gpu.*.misses", "gpu.l2.misses"));
    EXPECT_TRUE(globMatch("gpu.l?", "gpu.l2"));
    EXPECT_FALSE(globMatch("gpu.l?", "gpu.l22"));
    EXPECT_TRUE(globMatch("exact", "exact"));
    EXPECT_FALSE(globMatch("exact", "exact.not"));
    EXPECT_TRUE(globMatch("*misses", "gpu.l2.misses"));
}

TEST(Summary, MeanStddevPercentile)
{
    const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
    EXPECT_NEAR(stddev(v), std::sqrt(5.0 / 3.0), 1e-12)
        << "sample (n-1) standard deviation";
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);
    EXPECT_DOUBLE_EQ(percentile({}, 95.0), 0.0);
}

TEST(Image, PgmAndPpmFilesHaveBinaryHeaders)
{
    GrayImage gray(4, 2);
    gray.at(3, 1) = 200;
    const std::filesystem::path pgm = tempFile("t.pgm");
    gray.writePgm(pgm.string());
    ASSERT_TRUE(std::filesystem::exists(pgm));
    // P5 header + 4*2 payload bytes.
    EXPECT_GE(std::filesystem::file_size(pgm), 8u + 8u);

    RgbImage rgb(2, 2);
    rgb.at(0, 0) = RgbImage::categorical(1);
    const std::filesystem::path ppm = tempFile("t.ppm");
    rgb.writePpm(ppm.string());
    ASSERT_TRUE(std::filesystem::exists(ppm));
    EXPECT_GE(std::filesystem::file_size(ppm), 8u + 12u);
}

TEST(Image, CategoricalPaletteSeparatesNeighbors)
{
    const Rgb a = RgbImage::categorical(0);
    const Rgb b = RgbImage::categorical(1);
    EXPECT_TRUE(a.r != b.r || a.g != b.g || a.b != b.b);
}
